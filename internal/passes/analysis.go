// Package passes is the pass-manager IR framework of the CRAT compiler:
// an explicit Pass interface, an AnalysisManager that computes the shared
// dataflow analyses (CFG, liveness, dominators, reconvergence, use-def)
// once per kernel version and invalidates them precisely on transform, and
// a Manager that runs passes with per-pass instrumentation (wall time,
// IR-size deltas, verify-after-every-pass, dump hooks, semantic
// spot-checks). The compiler (regalloc, spillopt, core), the cycle-level
// simulator (gpusim), and the functional emulator (emu) all obtain their
// static kernel analyses through this package, so there is exactly one
// analysis substrate instead of per-package private copies.
package passes

import (
	"crat/internal/cfg"
	"crat/internal/ptx"
)

// Kind identifies one cached analysis.
type Kind uint8

// Analysis kinds. KindUseDef depends only on the instruction list; every
// other kind derives from the CFG.
const (
	KindCFG Kind = iota
	KindLiveness
	KindDominators
	KindPostDominators
	KindLoopDepth
	KindReconvergence
	KindUseDef
	KindMicroOps
	kindCount
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCFG:
		return "cfg"
	case KindLiveness:
		return "liveness"
	case KindDominators:
		return "dominators"
	case KindPostDominators:
		return "post-dominators"
	case KindLoopDepth:
		return "loop-depth"
	case KindReconvergence:
		return "reconvergence"
	case KindUseDef:
		return "use-def"
	case KindMicroOps:
		return "micro-ops"
	}
	return "analysis(?)"
}

// derivedFromCFG lists every kind invalidated alongside the CFG.
var derivedFromCFG = []Kind{
	KindLiveness, KindDominators, KindPostDominators, KindLoopDepth, KindReconvergence,
	KindMicroOps,
}

// derivedFromUseDef lists kinds that bake per-instruction register operands
// and so go stale with use-def even when control flow is untouched (e.g. a
// register-renaming rewrite).
var derivedFromUseDef = []Kind{KindMicroOps}

// UseDef is the per-instruction register access summary the simulator's
// scoreboard and the shared kernel analyses consume: for each pc, the
// registers read (guard, sources, memory bases) and the register written
// (ptx.NoReg when the instruction defines nothing). Use slices share one
// backing arena.
type UseDef struct {
	Uses [][]ptx.Reg
	Defs []ptx.Reg
}

// Reconvergence is the SIMT control-flow summary: per-pc branch targets and
// the reconvergence pc of every conditional branch (-1 where not
// applicable). A reconvergence pc equal to len(Insts) means kernel end.
type Reconvergence struct {
	Targets []int
	Reconv  []int
}

// AnalysisManager owns the analyses of one kernel as it flows through a
// pass pipeline. Analyses are computed lazily on first request, memoized,
// and dropped when a transform invalidates them; the version counter
// advances on every invalidation so instrumentation can tell whether a
// pass changed the IR.
type AnalysisManager struct {
	k       *ptx.Kernel
	version uint64

	valid    [kindCount]bool
	graph    *cfg.Graph
	liveness *cfg.Liveness
	doms     []int
	pdoms    []int
	depth    []int
	reconv   *Reconvergence
	usedef   *UseDef
	micro    *MicroStream

	// Computes counts analysis builds by kind; the caching tests assert an
	// unchanged kernel never pays for the same analysis twice.
	Computes [kindCount]int
}

// NewAnalysisManager binds a manager to a kernel with no analyses computed.
func NewAnalysisManager(k *ptx.Kernel) *AnalysisManager {
	return &AnalysisManager{k: k}
}

// Kernel returns the kernel currently bound to the manager — the pipeline's
// notion of "the IR right now". Passes that produce a new kernel object
// rebind it with Replace.
func (am *AnalysisManager) Kernel() *ptx.Kernel { return am.k }

// Version returns the invalidation counter. It advances on Invalidate,
// InvalidateAll, and Replace, so two equal readings bracket a stretch in
// which every cached analysis stayed valid.
func (am *AnalysisManager) Version() uint64 { return am.version }

// Replace rebinds the manager to a new kernel object (a pass produced a
// rewritten kernel rather than mutating in place) and drops every analysis.
func (am *AnalysisManager) Replace(k *ptx.Kernel) {
	am.k = k
	am.InvalidateAll()
}

// InvalidateAll drops every cached analysis.
func (am *AnalysisManager) InvalidateAll() {
	am.version++
	for i := range am.valid {
		am.valid[i] = false
	}
	am.graph, am.liveness, am.doms, am.pdoms, am.depth, am.reconv, am.usedef, am.micro =
		nil, nil, nil, nil, nil, nil, nil, nil
}

// Invalidate drops the named analyses plus everything derived from them
// (invalidating the CFG cascades to all CFG-derived kinds). Passes that
// rewrite instructions wholesale should use InvalidateAll; Invalidate is
// the precise form for transforms with a bounded footprint.
func (am *AnalysisManager) Invalidate(kinds ...Kind) {
	if len(kinds) == 0 {
		return
	}
	am.version++
	drop := func(k Kind) {
		am.valid[k] = false
		switch k {
		case KindCFG:
			am.graph = nil
		case KindLiveness:
			am.liveness = nil
		case KindDominators:
			am.doms = nil
		case KindPostDominators:
			am.pdoms = nil
		case KindLoopDepth:
			am.depth = nil
		case KindReconvergence:
			am.reconv = nil
		case KindUseDef:
			am.usedef = nil
		case KindMicroOps:
			am.micro = nil
		}
	}
	for _, k := range kinds {
		drop(k)
		if k == KindCFG {
			for _, d := range derivedFromCFG {
				drop(d)
			}
		}
		if k == KindUseDef {
			for _, d := range derivedFromUseDef {
				drop(d)
			}
		}
	}
}

// Require computes the listed analyses eagerly (the Manager calls it with a
// pass's declared requirements before running the pass).
func (am *AnalysisManager) Require(kinds ...Kind) error {
	for _, k := range kinds {
		var err error
		switch k {
		case KindCFG:
			_, err = am.CFG()
		case KindLiveness:
			_, err = am.Liveness()
		case KindDominators:
			_, err = am.Dominators()
		case KindPostDominators:
			_, err = am.PostDominators()
		case KindLoopDepth:
			_, err = am.LoopDepth()
		case KindReconvergence:
			_, err = am.Reconvergence()
		case KindUseDef:
			am.UseDef()
		case KindMicroOps:
			_, err = am.MicroOps()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// CFG returns the kernel's control-flow graph, building it on first use.
func (am *AnalysisManager) CFG() (*cfg.Graph, error) {
	if am.valid[KindCFG] {
		return am.graph, nil
	}
	g, err := cfg.Build(am.k)
	if err != nil {
		return nil, err
	}
	am.graph = g
	am.valid[KindCFG] = true
	am.Computes[KindCFG]++
	return g, nil
}

// Liveness returns the live-variable analysis over the cached CFG.
func (am *AnalysisManager) Liveness() (*cfg.Liveness, error) {
	if am.valid[KindLiveness] {
		return am.liveness, nil
	}
	g, err := am.CFG()
	if err != nil {
		return nil, err
	}
	am.liveness = cfg.ComputeLiveness(g)
	am.valid[KindLiveness] = true
	am.Computes[KindLiveness]++
	return am.liveness, nil
}

// Dominators returns the immediate-dominator array (block 0 is the root).
func (am *AnalysisManager) Dominators() ([]int, error) {
	if am.valid[KindDominators] {
		return am.doms, nil
	}
	g, err := am.CFG()
	if err != nil {
		return nil, err
	}
	am.doms = g.Dominators()
	am.valid[KindDominators] = true
	am.Computes[KindDominators]++
	return am.doms, nil
}

// PostDominators returns the immediate post-dominator array.
func (am *AnalysisManager) PostDominators() ([]int, error) {
	if am.valid[KindPostDominators] {
		return am.pdoms, nil
	}
	g, err := am.CFG()
	if err != nil {
		return nil, err
	}
	am.pdoms = g.PostDominators()
	am.valid[KindPostDominators] = true
	am.Computes[KindPostDominators]++
	return am.pdoms, nil
}

// LoopDepth returns the per-block loop-nesting depth.
func (am *AnalysisManager) LoopDepth() ([]int, error) {
	if am.valid[KindLoopDepth] {
		return am.depth, nil
	}
	g, err := am.CFG()
	if err != nil {
		return nil, err
	}
	am.depth = g.LoopDepth()
	am.valid[KindLoopDepth] = true
	am.Computes[KindLoopDepth]++
	return am.depth, nil
}

// InstLoopDepth returns the loop depth of every instruction, derived from
// the cached block depths.
func (am *AnalysisManager) InstLoopDepth() ([]int, error) {
	bd, err := am.LoopDepth()
	if err != nil {
		return nil, err
	}
	g, err := am.CFG()
	if err != nil {
		return nil, err
	}
	out := make([]int, len(am.k.Insts))
	for i := range out {
		out[i] = bd[g.BlockOf(i)]
	}
	return out, nil
}

// Reconvergence returns the per-pc branch-target and reconvergence arrays
// the SIMT executors (gpusim, emu) consume.
func (am *AnalysisManager) Reconvergence() (*Reconvergence, error) {
	if am.valid[KindReconvergence] {
		return am.reconv, nil
	}
	g, err := am.CFG()
	if err != nil {
		return nil, err
	}
	k := am.k
	reconvMap := g.ReconvergencePoints()
	labels := make(map[string]int)
	for i := range k.Insts {
		if l := k.Insts[i].Label; l != "" {
			labels[l] = i
		}
	}
	r := &Reconvergence{
		Targets: make([]int, len(k.Insts)),
		Reconv:  make([]int, len(k.Insts)),
	}
	for i := range k.Insts {
		r.Targets[i] = -1
		if k.Insts[i].Op == ptx.OpBra {
			if t, ok := labels[k.Insts[i].Target]; ok {
				r.Targets[i] = t
			}
		}
		r.Reconv[i] = -1
		if rc, ok := reconvMap[i]; ok {
			r.Reconv[i] = rc
		}
	}
	am.reconv = r
	am.valid[KindReconvergence] = true
	am.Computes[KindReconvergence]++
	return r, nil
}

// UseDef returns the per-pc register access summary. It needs no CFG, so it
// survives control-flow-only invalidation.
func (am *AnalysisManager) UseDef() *UseDef {
	if am.valid[KindUseDef] {
		return am.usedef
	}
	k := am.k
	n := len(k.Insts)
	ud := &UseDef{
		Uses: make([][]ptx.Reg, n),
		Defs: make([]ptx.Reg, n),
	}
	var arena []ptx.Reg // one backing array for all use slices
	for i := range k.Insts {
		in := &k.Insts[i]
		start := len(arena)
		arena = in.Uses(arena)
		ud.Uses[i] = arena[start:len(arena):len(arena)]
		ud.Defs[i] = ptx.NoReg
		if in.Dst.Kind == ptx.OperandReg {
			ud.Defs[i] = in.Dst.Reg
		}
	}
	am.usedef = ud
	am.valid[KindUseDef] = true
	am.Computes[KindUseDef]++
	return ud
}
