package faultinject

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "fsync-fail:nth=5,count=2;torn-write:nth=3,keep=12;enospc:after=6;latency:every=4,delay=150ms"
	sc, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(sc.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", sc.String(), err)
	}
	if got, want := back.String(), sc.String(); got != want {
		t.Errorf("round trip %q != %q", got, want)
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"explode:nth=1",              // unknown kind
		"fsync-fail:bogus=1",         // unknown parameter
		"fsync-fail",                 // no trigger
		"fsync-fail:nth=x",           // bad int
		"latency:every=2,delay=soon", // bad duration
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	if sc, err := Parse(""); err != nil || sc.Active() {
		t.Errorf("empty spec: sc=%v err=%v, want inert scenario", sc, err)
	}
}

func TestNilScenarioIsInert(t *testing.T) {
	var sc *Scenario
	if sc.Active() || sc.Fired(KindFsyncFail) != 0 || sc.String() != "" {
		t.Error("nil scenario is not inert")
	}
	if _, ok := sc.hit(KindFsyncFail); ok {
		t.Error("nil scenario fired")
	}
}

// TestFsyncFailNth: exactly the Nth..Nth+count-1 syncs fail, shared
// across file and directory syncs, deterministically.
func TestFsyncFailNth(t *testing.T) {
	dir := t.TempDir()
	sc := MustParse("fsync-fail:nth=2,count=2")
	fs := NewFS(OS(), sc)
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var errs []error
	for i := 0; i < 4; i++ {
		errs = append(errs, f.Sync())
	}
	for i, want := range []bool{false, true, true, false} {
		if got := errs[i] != nil; got != want {
			t.Errorf("sync %d: err=%v, want failure=%t", i+1, errs[i], want)
		}
	}
	if !errors.Is(errs[1], syscall.EIO) {
		t.Errorf("injected fsync error %v is not EIO", errs[1])
	}
	if sc.Fired(KindFsyncFail) != 2 {
		t.Errorf("fired = %d, want 2", sc.Fired(KindFsyncFail))
	}
}

// TestTornWrite: the Nth write persists only its keep-prefix while the
// caller is told it fully succeeded — a power cut the process never saw.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	sc := MustParse("torn-write:nth=2,keep=3")
	fs := NewFS(OS(), sc)
	path := filepath.Join(dir, "x")
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []string{"aaaa", "bbbb", "cccc"} {
		n, err := f.Write([]byte(chunk))
		if err != nil || n != 4 {
			t.Fatalf("write %q = %d, %v; the tear must be invisible to the writer", chunk, n, err)
		}
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if got, want := string(data), "aaaabbbcccc"; got != want {
		t.Errorf("on-disk bytes %q, want %q", got, want)
	}
}

// TestENOSPCAfter: writes past the threshold fail with ENOSPC until the
// count budget is spent, then the disk "recovers".
func TestENOSPCAfter(t *testing.T) {
	dir := t.TempDir()
	sc := MustParse("enospc:after=1,count=2")
	fs := NewFS(OS(), sc)
	f, err := fs.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var errs []error
	for i := 0; i < 4; i++ {
		_, err := f.Write([]byte("x"))
		errs = append(errs, err)
	}
	for i, want := range []bool{false, true, true, false} {
		if got := errs[i] != nil; got != want {
			t.Errorf("write %d: err=%v, want failure=%t", i+1, errs[i], want)
		}
	}
	if !errors.Is(errs[1], syscall.ENOSPC) {
		t.Errorf("injected write error %v is not ENOSPC", errs[1])
	}
}

func TestShortRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFS(OS(), MustParse("short-read:nth=1,keep=4"))
	data, err := fs.ReadFile(path)
	if err != nil || string(data) != "0123" {
		t.Errorf("short read = %q, %v; want %q", data, err, "0123")
	}
	data, err = fs.ReadFile(path)
	if err != nil || string(data) != "0123456789" {
		t.Errorf("second read = %q, %v; want full contents", data, err)
	}
}

// TestCountersAreConcurrencySafe: N goroutines sharing one scenario fire
// exactly the configured number of faults, no matter the interleaving.
func TestCountersAreConcurrencySafe(t *testing.T) {
	sc := MustParse("fsync-fail:nth=10,count=5")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				sc.hit(KindFsyncFail)
			}
		}()
	}
	wg.Wait()
	if got := sc.Fired(KindFsyncFail); got != 5 {
		t.Errorf("fired = %d, want exactly 5 across 80 concurrent calls", got)
	}
}

func TestTransportConnReset(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	sc := MustParse("conn-reset:every=2")
	client := &http.Client{Transport: NewTransport(nil, sc)}
	var errs []error
	for i := 0; i < 4; i++ {
		resp, err := client.Get(srv.URL)
		if resp != nil {
			resp.Body.Close()
		}
		errs = append(errs, err)
	}
	for i, want := range []bool{false, true, false, true} {
		if got := errs[i] != nil; got != want {
			t.Errorf("request %d: err=%v, want reset=%t", i+1, errs[i], want)
		}
	}
	if !errors.Is(errs[1], syscall.ECONNRESET) {
		t.Errorf("injected transport error %v is not ECONNRESET", errs[1])
	}
	if sc.Fired(KindConnReset) != 2 {
		t.Errorf("fired = %d, want 2", sc.Fired(KindConnReset))
	}
}

func TestTransportLatencyRespectsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	sc := MustParse("latency:every=1,delay=10s")
	client := &http.Client{Transport: NewTransport(nil, sc), Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("request under a 10s injected stall returned before its 50ms deadline error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled request still took %s; the stall ignored the context", elapsed)
	}
}
