// Package faultinject is the deterministic fault-injection seam for the
// durability and transport layers: a Scenario is a named, seeded,
// replayable set of fault rules parsed from a compact spec string, and
// the package provides the two places faults are applied — an FS
// interface wrapping the filesystem operations the checkpoint journal
// performs (fail the Nth fsync, tear a write at byte K, run out of disk,
// short-read a file) and an http.RoundTripper wrapper for transport
// faults (inject latency, reset connections).
//
// Every rule counts deterministically: "fsync-fail:nth=5,count=2" fails
// exactly the 5th and 6th fsync issued through the scenario's FS, no
// matter how the calls interleave, so a failure mode reproduced once is
// reproduced forever. The same spec string replays the same faults; a
// scenario reports how often each rule fired so tests can assert the
// fault actually happened rather than silently not triggering.
//
// Consumers: internal/checkpoint (OpenFS takes an FS), cmd/cratd
// (-fault wires a scenario under the persistent cache), cmd/cratgw
// (-fault wraps the proxy transport), and internal/shard's chaos matrix
// (spawns fleets with per-process fault specs). See DESIGN.md §16.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Rule kinds understood by Parse. Filesystem kinds apply through FS;
// transport kinds through Transport. Unknown kinds are a parse error so
// a typo in a -fault flag fails fast instead of silently injecting
// nothing.
const (
	KindFsyncFail = "fsync-fail" // nth=N[,count=M]: fail the Nth..Nth+M-1 fsync (EIO)
	KindTornWrite = "torn-write" // nth=N[,keep=K]: truncate the Nth write to K bytes, report success
	KindENOSPC    = "enospc"     // after=N[,count=M]: writes past the Nth fail with ENOSPC (M=0 ⇒ forever)
	KindShortRead = "short-read" // nth=N[,keep=K]: return only the first K bytes of the Nth read
	KindConnReset = "conn-reset" // every=N | nth=N: fail the matching requests with ECONNRESET
	KindLatency   = "latency"    // every=N[,delay=D]: stall the matching requests for D (default 100ms)
)

var knownKinds = map[string]bool{
	KindFsyncFail: true, KindTornWrite: true, KindENOSPC: true,
	KindShortRead: true, KindConnReset: true, KindLatency: true,
}

// Rule is one parsed fault directive. Nth and Every are 1-based call
// indices into the per-kind counter; Count bounds how many consecutive
// calls fire (0 means the kind's default: 1 for nth-rules, unbounded for
// after-rules).
type Rule struct {
	Kind  string
	Nth   int           // fire on exactly the Nth call (0 = unset)
	Every int           // fire on every Nth call (0 = unset)
	After int           // fire on every call past the Nth (0 = unset)
	Count int           // how many firings before the rule retires (0 = kind default)
	Keep  int           // bytes preserved by torn-write/short-read (-1 = half)
	Delay time.Duration // latency rule stall
}

// Scenario is a named, seeded, replayable fault plan plus its firing
// log. Safe for concurrent use: the per-kind call counters are what make
// injection deterministic under concurrency — the Nth fsync is the Nth
// fsync regardless of which goroutine issues it.
type Scenario struct {
	Name string
	Seed int64

	mu    sync.Mutex
	rules []Rule
	calls map[string]int // per-kind call counter
	fired map[string]int // per-kind firings
}

// New builds a scenario from already-parsed rules.
func New(name string, seed int64, rules ...Rule) *Scenario {
	return &Scenario{
		Name:  name,
		Seed:  seed,
		rules: rules,
		calls: make(map[string]int),
		fired: make(map[string]int),
	}
}

// Parse builds a scenario from a spec string: semicolon-separated rules,
// each "kind:key=val,key=val". Example:
//
//	fsync-fail:nth=5,count=2;latency:every=4,delay=150ms
//
// An empty spec yields a scenario that never fires (valid: it lets a
// -fault flag default to "").
func Parse(spec string) (*Scenario, error) {
	sc := New(spec, 0)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, args, _ := strings.Cut(part, ":")
		kind = strings.TrimSpace(kind)
		if !knownKinds[kind] {
			return nil, fmt.Errorf("faultinject: unknown fault kind %q in %q", kind, spec)
		}
		r := Rule{Kind: kind, Keep: -1}
		for _, kv := range strings.Split(args, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: malformed parameter %q in rule %q", kv, part)
			}
			var err error
			switch k {
			case "nth":
				r.Nth, err = strconv.Atoi(v)
			case "every":
				r.Every, err = strconv.Atoi(v)
			case "after":
				r.After, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "keep":
				r.Keep, err = strconv.Atoi(v)
			case "delay":
				r.Delay, err = time.ParseDuration(v)
			case "seed":
				sc.Seed, err = strconv.ParseInt(v, 10, 64)
			default:
				return nil, fmt.Errorf("faultinject: unknown parameter %q in rule %q", k, part)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: parameter %q in rule %q: %w", kv, part, err)
			}
		}
		if r.Nth == 0 && r.Every == 0 && r.After == 0 {
			return nil, fmt.Errorf("faultinject: rule %q needs one of nth=, every=, after=", part)
		}
		sc.rules = append(sc.rules, r)
	}
	return sc, nil
}

// MustParse is Parse for compile-time-constant specs in tests.
func MustParse(spec string) *Scenario {
	sc, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return sc
}

// String renders the scenario's rules back into spec form.
func (s *Scenario) String() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	parts := make([]string, 0, len(s.rules))
	for _, r := range s.rules {
		var kv []string
		if r.Nth > 0 {
			kv = append(kv, "nth="+strconv.Itoa(r.Nth))
		}
		if r.Every > 0 {
			kv = append(kv, "every="+strconv.Itoa(r.Every))
		}
		if r.After > 0 {
			kv = append(kv, "after="+strconv.Itoa(r.After))
		}
		if r.Count > 0 {
			kv = append(kv, "count="+strconv.Itoa(r.Count))
		}
		if r.Keep >= 0 {
			kv = append(kv, "keep="+strconv.Itoa(r.Keep))
		}
		if r.Delay > 0 {
			kv = append(kv, "delay="+r.Delay.String())
		}
		parts = append(parts, r.Kind+":"+strings.Join(kv, ","))
	}
	return strings.Join(parts, ";")
}

// Active reports whether the scenario has any rules (a nil scenario is
// inert, so callers can thread a nil through unconditionally).
func (s *Scenario) Active() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rules) > 0
}

// hit advances kind's call counter and returns the rule that fires on
// this call, if any. Exactly one rule fires per call (the first match in
// spec order).
func (s *Scenario) hit(kind string) (Rule, bool) {
	if s == nil {
		return Rule{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls[kind]++
	n := s.calls[kind]
	for _, r := range s.rules {
		if r.Kind != kind {
			continue
		}
		fires := false
		switch {
		case r.Nth > 0:
			count := r.Count
			if count <= 0 {
				count = 1
			}
			fires = n >= r.Nth && n < r.Nth+count
		case r.Every > 0:
			fires = n%r.Every == 0
		case r.After > 0:
			fires = n > r.After && (r.Count <= 0 || n <= r.After+r.Count)
		}
		if fires {
			s.fired[kind]++
			return r, true
		}
	}
	return Rule{}, false
}

// Fired reports how many times rules of the given kind have fired —
// the assertion hook that keeps a chaos test honest (a fault that never
// fired proves nothing).
func (s *Scenario) Fired(kind string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[kind]
}

// FiredTotal sums firings across all kinds.
func (s *Scenario) FiredTotal() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, n := range s.fired {
		total += n
	}
	return total
}

// Report renders the firing log ("fsync-fail=2 latency=4"), kinds
// sorted, for operational logs.
func (s *Scenario) Report() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	kinds := make([]string, 0, len(s.fired))
	for k := range s.fired {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, s.fired[k]))
	}
	return strings.Join(parts, " ")
}
