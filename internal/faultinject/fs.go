package faultinject

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// FS is the filesystem seam the checkpoint journal writes through. It is
// deliberately the small set of operations a crash-safe journal needs —
// append, fsync, atomic rename, directory sync — so every durability
// decision flows through a single interceptable surface.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(name string) ([]byte, error)
	// OpenFile opens name for writing (append or truncate per flag).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp mirrors os.CreateTemp for atomic write-then-rename.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Glob(pattern string) ([]string, error)
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory so a rename or create within it is
	// durable.
	SyncDir(dir string) error
}

// File is the writable-file surface of FS.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// OS returns the passthrough FS over the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Glob(pattern string) ([]string, error)        { return filepath.Glob(pattern) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// NewFS wraps inner with sc's filesystem fault rules. A nil or rule-less
// scenario passes everything through untouched.
func NewFS(inner FS, sc *Scenario) FS {
	if !sc.Active() {
		return inner
	}
	return &faultFS{inner: inner, sc: sc}
}

type faultFS struct {
	inner FS
	sc    *Scenario
}

func (f *faultFS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *faultFS) Rename(oldpath, newpath string) error         { return f.inner.Rename(oldpath, newpath) }
func (f *faultFS) Remove(name string) error                     { return f.inner.Remove(name) }
func (f *faultFS) Glob(pattern string) ([]string, error)        { return f.inner.Glob(pattern) }
func (f *faultFS) Stat(name string) (fs.FileInfo, error)        { return f.inner.Stat(name) }

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return data, err
	}
	if r, ok := f.sc.hit(KindShortRead); ok {
		keep := r.Keep
		if keep < 0 || keep > len(data) {
			keep = len(data) / 2
		}
		return data[:keep], nil
	}
	return data, err
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, sc: f.sc}, nil
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, sc: f.sc}, nil
}

func (f *faultFS) SyncDir(dir string) error {
	if _, ok := f.sc.hit(KindFsyncFail); ok {
		return fmt.Errorf("faultinject: injected dir-fsync failure on %s: %w", dir, syscall.EIO)
	}
	return f.inner.SyncDir(dir)
}

// faultFile intercepts Write and Sync on one file. The write counter is
// scenario-global (not per-file), so "the 5th write" means the 5th write
// the whole store issued — the deterministic frame of reference a
// replayable chaos scenario needs.
type faultFile struct {
	File
	sc *Scenario
}

func (f *faultFile) Write(p []byte) (int, error) {
	if r, ok := f.sc.hit(KindENOSPC); ok {
		_ = r
		return 0, fmt.Errorf("faultinject: injected write failure on %s: %w", f.Name(), syscall.ENOSPC)
	}
	if r, ok := f.sc.hit(KindTornWrite); ok {
		keep := r.Keep
		if keep < 0 || keep > len(p) {
			keep = len(p) / 2
		}
		// The torn prefix really lands on disk, and the caller is told the
		// whole write succeeded — exactly what a power cut mid-write looks
		// like to the process that never got to observe it.
		if _, err := f.File.Write(p[:keep]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if _, ok := f.sc.hit(KindFsyncFail); ok {
		return fmt.Errorf("faultinject: injected fsync failure on %s: %w", f.Name(), syscall.EIO)
	}
	return f.File.Sync()
}
