package faultinject

import (
	"fmt"
	"net/http"
	"syscall"
	"time"
)

// NewTransport wraps base with sc's transport fault rules: conn-reset
// fails the matching requests with ECONNRESET before they leave the
// process (the caller sees the same error shape a mid-flight RST
// produces), and latency stalls matching requests for the rule's delay
// (respecting the request context, so a hedged or deadlined caller is
// never held hostage). A nil or rule-less scenario returns base
// untouched.
func NewTransport(base http.RoundTripper, sc *Scenario) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if !sc.Active() {
		return base
	}
	return &faultTransport{base: base, sc: sc}
}

type faultTransport struct {
	base http.RoundTripper
	sc   *Scenario
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if r, ok := t.sc.hit(KindLatency); ok {
		delay := r.Delay
		if delay <= 0 {
			delay = 100 * time.Millisecond
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if _, ok := t.sc.hit(KindConnReset); ok {
		return nil, fmt.Errorf("faultinject: injected connection reset to %s: %w",
			req.URL.Host, syscall.ECONNRESET)
	}
	return t.base.RoundTrip(req)
}
