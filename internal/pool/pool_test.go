package pool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		Run(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunZeroItems(t *testing.T) {
	Run(4, 0, func(i int) { t.Errorf("fn called with n=0 (i=%d)", i) })
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	Run(4, 8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestRunPanicDrainsRemainingWork(t *testing.T) {
	var ran atomic.Int32
	func() {
		defer func() { recover() }()
		Run(2, 50, func(i int) {
			ran.Add(1)
			if i == 0 {
				panic("first")
			}
		})
	}()
	// One worker panicking must not strand the others' items: the pool
	// keeps draining, so every index still runs exactly once.
	if got := ran.Load(); got != 50 {
		t.Errorf("%d items ran, want all 50 despite the panic", got)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers() = %d, want >= 1", DefaultWorkers())
	}
}
