package pool

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		Run(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestRunZeroItems(t *testing.T) {
	Run(4, 0, func(i int) { t.Errorf("fn called with n=0 (i=%d)", i) })
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", pe)
		}
		if pe.Value != "boom" || pe.Job != 3 || pe.NumPanicked != 1 {
			t.Errorf("recovered %+v, want boom from job 3, 1 panicked", pe)
		}
		if !strings.Contains(pe.Error(), "job 3") || !strings.Contains(pe.Error(), "boom") {
			t.Errorf("message %q lacks job index or value", pe.Error())
		}
	}()
	Run(4, 8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestRunCountsAllPanickedWorkers(t *testing.T) {
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", pe)
		}
		// Every job panics, so every worker records at least one panic; the
		// first value survives and the count reflects the full blast radius.
		if pe.NumPanicked != 20 {
			t.Errorf("NumPanicked = %d, want 20", pe.NumPanicked)
		}
		if !strings.Contains(pe.Error(), "20 workers panicked") {
			t.Errorf("message %q lacks the panic count", pe.Error())
		}
	}()
	Run(4, 20, func(i int) { panic(i) })
}

func TestRunPanicUnwrapsErrorValue(t *testing.T) {
	sentinel := errors.New("sentinel")
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", pe)
		}
		if !errors.Is(pe, sentinel) {
			t.Error("PanicError does not unwrap to the panicked error")
		}
	}()
	Run(2, 4, func(i int) {
		if i == 1 {
			panic(sentinel)
		}
	})
}

func TestRunSerialPanicStaysRaw(t *testing.T) {
	defer func() {
		if r := recover(); r != "raw" {
			t.Errorf("serial path recovered %v, want the raw value", r)
		}
	}()
	Run(1, 3, func(i int) { panic("raw") })
}

func TestRunCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := 0
		err := RunCtx(ctx, workers, 50, func(i int) { ran++ })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if workers == 1 && ran != 0 {
			t.Errorf("serial canceled run still ran %d jobs", ran)
		}
	}
}

func TestRunCtxCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	var once sync.Once
	err := RunCtx(ctx, 2, 10_000, func(i int) {
		ran.Add(1)
		once.Do(cancel)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// The exact count is scheduling-dependent, but cancellation must stop
	// the dispatch long before the full job list drains.
	if got := ran.Load(); got > 1000 {
		t.Errorf("%d jobs ran after cancellation, want an early stop", got)
	}
}

// TestRunCtxCancelFastPathAtDequeue pins one worker inside job 0 and has
// job 1 cancel the context before unblocking it: job 2 is queued the whole
// time, and the dequeue-time cancellation check must prevent it from ever
// starting — on either worker, whichever claims it first. The interleaving
// is fully determined by the channels, so the test is deterministic under
// -race.
func TestRunCtxCancelFastPathAtDequeue(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j0started := make(chan struct{})
	j0release := make(chan struct{})
	var ran [3]atomic.Bool
	err := RunCtx(ctx, 2, 3, func(i int) {
		ran[i].Store(true)
		switch i {
		case 0:
			close(j0started)
			<-j0release
		case 1:
			<-j0started // the other worker is committed to job 0
			cancel()    // job 2 is still queued at this instant
			close(j0release)
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if !ran[0].Load() || !ran[1].Load() {
		t.Fatalf("setup jobs did not run: job0=%v job1=%v", ran[0].Load(), ran[1].Load())
	}
	if ran[2].Load() {
		t.Fatalf("queued job started after cancellation")
	}
}

func TestRunCtxCompletesCleanly(t *testing.T) {
	var ran atomic.Int32
	if err := RunCtx(context.Background(), 4, 64, func(i int) { ran.Add(1) }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 64 {
		t.Errorf("ran %d jobs, want 64", ran.Load())
	}
}

func TestRunPanicDrainsRemainingWork(t *testing.T) {
	var ran atomic.Int32
	func() {
		defer func() { recover() }()
		Run(2, 50, func(i int) {
			ran.Add(1)
			if i == 0 {
				panic("first")
			}
		})
	}()
	// One worker panicking must not strand the others' items: the pool
	// keeps draining, so every index still runs exactly once.
	if got := ran.Load(); got != 50 {
		t.Errorf("%d items ran, want all 50 despite the panic", got)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers() = %d, want >= 1", DefaultWorkers())
	}
}
