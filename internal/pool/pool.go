// Package pool provides a minimal bounded worker pool for fanning out
// index-addressed work. It is the single concurrency primitive shared by the
// experiment harness and the core optimizer: callers write results into
// pre-sized slices at their job index, so output order never depends on
// scheduling.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes 0: one worker
// per available CPU.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// PanicError is the value Run re-panics with when workers panic: it keeps
// the first recovered value, attributes it to a job index, and counts how
// many workers panicked in total (later panics are usually consequences of
// the first, but a count > 1 tells the debugger the blast radius).
type PanicError struct {
	// Job is the job index whose fn raised the first panic.
	Job int
	// Value is the first recovered panic value.
	Value any
	// NumPanicked counts workers that panicked before the pool drained.
	NumPanicked int
}

func (e *PanicError) Error() string {
	if e.NumPanicked > 1 {
		return fmt.Sprintf("pool: job %d panicked: %v (%d workers panicked in total)",
			e.Job, e.Value, e.NumPanicked)
	}
	return fmt.Sprintf("pool: job %d panicked: %v", e.Job, e.Value)
}

// Unwrap exposes an underlying error panic value to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Run invokes fn(i) for every i in [0, n), using at most `workers`
// goroutines. workers <= 0 means DefaultWorkers(). With one worker (or one
// job) it degenerates to a plain loop on the calling goroutine, so serial
// behaviour — including raw panic propagation — is exactly the pre-pool code
// path.
//
// Jobs are handed out by an atomic counter, so early-finishing workers steal
// remaining indices rather than idling. Run returns only after every started
// job has finished. If any fn panics, Run re-panics with a *PanicError
// wrapping the first captured value (job index and panicking-worker count
// included) after all workers have stopped; the remaining jobs may or may
// not have run. fn must therefore confine its effects to its own index (or
// synchronize internally).
func Run(workers, n int, fn func(i int)) {
	_ = RunCtx(context.Background(), workers, n, fn)
}

// RunCtx is Run with cooperative cancellation: once ctx is done, no new job
// indices are handed out and RunCtx returns the context's error after every
// in-flight job has finished (fn itself is responsible for observing ctx if
// individual jobs are long-running). A nil return means every index ran.
// Panic handling matches Run.
func RunCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		first   *PanicError
	)
	done := ctx.Done()
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			// Cancellation fast path at dequeue: the check runs after the
			// index is claimed, so a cancel that lands while a worker sits
			// between jobs (or while it was blocked inside the previous
			// job) stops the queue before the claimed job starts. Claimed-
			// but-unstarted indices are simply abandoned — RunCtx reports
			// ctx.Err(), so callers know the run was partial.
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if first == nil {
							first = &PanicError{Job: i, Value: r, NumPanicked: 1}
						} else {
							first.NumPanicked++
						}
						panicMu.Unlock()
					}
				}()
				fn(i)
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if first != nil {
		panic(first)
	}
	return ctx.Err()
}
