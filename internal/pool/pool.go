// Package pool provides a minimal bounded worker pool for fanning out
// index-addressed work. It is the single concurrency primitive shared by the
// experiment harness and the core optimizer: callers write results into
// pre-sized slices at their job index, so output order never depends on
// scheduling.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes 0: one worker
// per available CPU.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// Run invokes fn(i) for every i in [0, n), using at most `workers`
// goroutines. workers <= 0 means DefaultWorkers(). With one worker (or one
// job) it degenerates to a plain loop on the calling goroutine, so serial
// behaviour — including panic propagation — is exactly the pre-pool code
// path.
//
// Jobs are handed out by an atomic counter, so early-finishing workers steal
// remaining indices rather than idling. Run returns only after every started
// job has finished. If any fn panics, Run re-panics with the first captured
// value after all workers have stopped; the remaining jobs may or may not
// have run. fn must therefore confine its effects to its own index (or
// synchronize internally).
func Run(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicked == nil {
							panicked = r
						}
						panicMu.Unlock()
					}
				}()
				fn(i)
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
