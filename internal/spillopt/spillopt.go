// Package spillopt implements the spilling optimization of the CRAT paper
// (Algorithm 1, §5.3): it splits the local-memory spill stack into
// sub-stacks by data type/width, estimates the access gain of each
// sub-stack, and solves a 0-1 knapsack by dynamic programming to decide
// which sub-stacks to move into spare shared memory — the fast on-chip
// alternative to long-latency local memory.
//
// The optimization never changes the TLP: callers pass the spare shared
// memory available *at the chosen TLP* and the rewriting only consumes that
// slack.
package spillopt

import (
	"fmt"
	"sort"

	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

// Split selects how the spill stack is divided into knapsack items.
type Split uint8

// Splitting strategies. SplitByType is the paper's choice ("we split the
// spill stack according to the data type and the width of the spilled
// variables"); the others are ablation alternatives (paper: "alternative
// split methods may lead to different result, we leave it as future work").
const (
	SplitByType      Split = iota
	SplitWhole             // the entire stack is one all-or-nothing item
	SplitPerVariable       // each spilled variable is its own item
)

// String names the splitting strategy.
func (s Split) String() string {
	switch s {
	case SplitWhole:
		return "whole-stack"
	case SplitPerVariable:
		return "per-variable"
	default:
		return "by-type"
	}
}

// Options configures the optimization.
type Options struct {
	// SpareShmBytes is the spare shared memory available per thread block
	// at the chosen TLP (SpareShmSize in Algorithm 1).
	SpareShmBytes int64
	// BlockSize is the number of threads per block; a sub-stack of s bytes
	// per thread costs s*BlockSize bytes of the block's shared memory.
	BlockSize int
	// Split selects the sub-stack splitting strategy.
	Split Split
	// UnweightedGain counts static access sites without loop-depth
	// weighting (ablation knob; the default weights by 10^depth).
	UnweightedGain bool
	// PreferLowGain inverts the selection: the *least* beneficial
	// sub-stacks are moved first (greedy, within the spare space). It
	// demonstrates that the choice of spilled variable matters (paper
	// Figure 8: spilling var2 beats spilling var1).
	PreferLowGain bool
}

// Group is one sub-stack: a set of spill slots moved (or not) together.
type Group struct {
	Key        string // "u32", "f64", ... (or "all", or a variable name)
	Slots      []regalloc.SpillSlot
	PerThread  int64   // sub-stack bytes per thread (subStackSize[i])
	SharedCost int64   // PerThread * BlockSize: knapsack weight
	Gain       float64 // estimated accesses redirected (gain[i])
	InShared   bool    // knapsack decision
}

// Result describes the rewritten kernel and the decisions taken.
type Result struct {
	// Alloc is the final allocation of the rewritten kernel (the shared
	// sub-stack address registers participate in coloring, so register
	// pressure is re-evaluated after the rewrite).
	Alloc *regalloc.Result
	// Groups lists the sub-stacks with their knapsack outcome.
	Groups []Group
	// SharedSpillBytes is the shared memory consumed per block.
	SharedSpillBytes int64
	// MovedGain and TotalGain summarize the knapsack objective.
	MovedGain, TotalGain float64
	// Overhead summarizes the spill instructions of the final kernel.
	Overhead ptx.SpillOverhead
}

// Optimize applies Algorithm 1 to an allocation result. When the input has
// no spills, or no sub-stack fits in the spare shared memory, it returns
// the input allocation unchanged (with the group analysis attached).
func Optimize(r *regalloc.Result, allocOpts regalloc.Options, opts Options) (*Result, error) {
	return OptimizeWith(nil, r, allocOpts, opts)
}

// OptimizeWith runs the optimization as a "shm-knapsack" pass under pm, so
// callers composing a larger pipeline share one instrumented manager (the
// nested reallocation's passes land under the same manager). A nil pm gets
// a private uninstrumented manager.
func OptimizeWith(pm *passes.Manager, r *regalloc.Result, allocOpts regalloc.Options, opts Options) (*Result, error) {
	out := &Result{Alloc: r}
	if r.Kernel != nil {
		out.Overhead = r.Kernel.SpillOverhead()
	}
	if len(r.Spills) == 0 {
		return out, nil
	}
	if opts.BlockSize <= 0 {
		return nil, fmt.Errorf("spillopt: non-positive block size %d", opts.BlockSize)
	}
	if pm == nil {
		pm = &passes.Manager{}
	}
	p := &knapsackPass{pm: pm, r: r, allocOpts: allocOpts, opts: opts, out: out}
	if err := pm.Run(passes.NewAnalysisManager(r.Virtual), p); err != nil {
		return nil, err
	}
	return out, nil
}

// knapsackPass is the shared-memory spilling optimization as a pipeline
// pass: split the spill stack into sub-stacks, estimate gains from the
// cached loop depths, solve the knapsack, and (when anything moves)
// rewrite the virtual kernel and re-run allocation under the same manager.
type knapsackPass struct {
	pm        *passes.Manager
	r         *regalloc.Result
	allocOpts regalloc.Options
	opts      Options
	out       *Result
}

func (p *knapsackPass) Name() string { return "shm-knapsack" }

func (p *knapsackPass) Requires() []passes.Kind {
	return []passes.Kind{passes.KindCFG, passes.KindLoopDepth}
}

func (p *knapsackPass) Invalidates() []passes.Kind { return nil }

func (p *knapsackPass) Run(k *ptx.Kernel, am *passes.AnalysisManager) error {
	r, opts, out := p.r, p.opts, p.out
	groups := splitGroups(r.Spills, opts.Split)
	depth, err := am.InstLoopDepth()
	if err != nil {
		return err
	}
	gains := estimateGains(r, groups, opts.UnweightedGain, depth)
	sizes := make([]int64, len(groups))
	for i := range groups {
		groups[i].Gain = gains[i]
		// Shared cost uses the element-interleaved (padded) layout size.
		groups[i].SharedCost = groupElem(&groups[i]) * int64(len(groups[i].Slots)) * int64(opts.BlockSize)
		sizes[i] = groups[i].SharedCost
		out.TotalGain += gains[i]
	}

	var mask []bool
	var moved float64
	if opts.PreferLowGain {
		mask, moved = worstFit(sizes, gains, opts.SpareShmBytes)
	} else {
		mask, moved = Knapsack(sizes, gains, opts.SpareShmBytes)
	}
	out.MovedGain = moved
	anyMoved := false
	for i := range groups {
		groups[i].InShared = mask[i]
		if mask[i] {
			anyMoved = true
			out.SharedSpillBytes += groups[i].SharedCost
		}
	}
	out.Groups = groups
	if !anyMoved {
		return nil
	}

	rewritten, err := rewriteToShared(r, groups, opts.BlockSize)
	if err != nil {
		return err
	}
	if err := ptx.Verify(rewritten, "spillopt"); err != nil {
		return err
	}
	final, err := regalloc.AllocateWith(p.pm, rewritten, p.allocOpts)
	if err != nil {
		return fmt.Errorf("spillopt: reallocation failed: %w", err)
	}
	out.Alloc = final
	out.Overhead = final.Kernel.SpillOverhead()
	am.Replace(final.Kernel)
	return nil
}

// splitGroups partitions the spill slots into sub-stacks.
func splitGroups(spills []regalloc.SpillSlot, split Split) []Group {
	switch split {
	case SplitWhole:
		g := Group{Key: "all"}
		for _, s := range spills {
			g.Slots = append(g.Slots, s)
			g.PerThread += int64(s.Type.Bytes())
		}
		return []Group{g}
	case SplitPerVariable:
		out := make([]Group, 0, len(spills))
		for _, s := range spills {
			out = append(out, Group{
				Key:       fmt.Sprintf("v%d", s.VReg),
				Slots:     []regalloc.SpillSlot{s},
				PerThread: int64(s.Type.Bytes()),
			})
		}
		return out
	default: // SplitByType
		byType := make(map[ptx.Type]*Group)
		var keys []ptx.Type
		for _, s := range spills {
			g, ok := byType[s.Type]
			if !ok {
				g = &Group{Key: s.Type.String()}
				byType[s.Type] = g
				keys = append(keys, s.Type)
			}
			g.Slots = append(g.Slots, s)
			g.PerThread += int64(s.Type.Bytes())
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		out := make([]Group, 0, len(keys))
		for _, k := range keys {
			out = append(out, *byType[k])
		}
		return out
	}
}

// estimateGains scans the virtual kernel for spill instructions (ld/st.local
// addressed off the spill base register) and accumulates each group's
// access count, weighted by 10^loop-depth unless unweighted (Algorithm 1
// lines 4-12). depth is the per-instruction loop depth of r.Virtual.
func estimateGains(r *regalloc.Result, groups []Group, unweighted bool, depth []int) []float64 {
	k := r.Virtual
	groupOf := make(map[int64]int)
	for gi := range groups {
		for _, s := range groups[gi].Slots {
			groupOf[s.Offset] = gi
		}
	}
	gains := make([]float64, len(groups))
	for i := range k.Insts {
		in := &k.Insts[i]
		off, ok := spillAccess(in, r.BaseReg)
		if !ok {
			continue
		}
		gi, ok := groupOf[off]
		if !ok {
			continue
		}
		w := 1.0
		if !unweighted {
			for d := 0; d < depth[i]; d++ {
				w *= 10
			}
		}
		gains[gi] += w
	}
	return gains
}

// spillAccess reports whether in is a spill access through base, returning
// the spill-stack offset.
func spillAccess(in *ptx.Inst, base ptx.Reg) (int64, bool) {
	if base == ptx.NoReg || !in.Op.IsMemory() || in.Space != ptx.SpaceLocal {
		return 0, false
	}
	var mem ptx.Operand
	if in.Op == ptx.OpLd {
		mem = in.Srcs[0]
	} else {
		mem = in.Dst
	}
	if mem.Kind != ptx.OperandMem || mem.Reg != base {
		return 0, false
	}
	return mem.Off, true
}

// Knapsack solves the 0-1 knapsack by dynamic programming (Algorithm 1
// lines 14-23): items with the given sizes and gains, capacity in bytes.
// It returns the selection mask and the achieved gain.
func Knapsack(sizes []int64, gains []float64, capacity int64) ([]bool, float64) {
	n := len(sizes)
	mask := make([]bool, n)
	if capacity <= 0 || n == 0 {
		return mask, 0
	}
	c := int(capacity)
	// S[i][v]: best gain using items 0..i-1 within capacity v (paper's
	// S[N, SpareShmSize] table, with take[][] playing the role of Mask).
	prev := make([]float64, c+1)
	take := make([][]bool, n)
	for i := 0; i < n; i++ {
		take[i] = make([]bool, c+1)
		cur := make([]float64, c+1)
		sz := int(sizes[i])
		for v := 0; v <= c; v++ {
			cur[v] = prev[v]
			if sz >= 0 && sz <= v {
				if alt := prev[v-sz] + gains[i]; alt > cur[v] {
					cur[v] = alt
					take[i][v] = true
				}
			}
		}
		prev = cur
	}
	// Trace back the selection.
	v := c
	for i := n - 1; i >= 0; i-- {
		if take[i][v] {
			mask[i] = true
			v -= int(sizes[i])
		}
	}
	return mask, prev[c]
}

// worstFit greedily selects the lowest-gain sub-stacks that fit: the
// anti-optimal placement used by the Figure 8 comparison.
func worstFit(sizes []int64, gains []float64, capacity int64) ([]bool, float64) {
	n := len(sizes)
	mask := make([]bool, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if gains[order[a]] != gains[order[b]] {
			return gains[order[a]] < gains[order[b]]
		}
		return order[a] < order[b]
	})
	total := 0.0
	left := capacity
	for _, i := range order {
		if sizes[i] <= left {
			mask[i] = true
			left -= sizes[i]
			total += gains[i]
		}
	}
	return mask, total
}

// sharedStackName names the shared-memory sub-stack array for a group.
func sharedStackName(key string) string { return "SpillShm_" + key }

// groupElem returns the interleaving element size of a group: the largest
// slot size, so every slot occupies one padded element.
func groupElem(g *Group) int64 {
	elem := int64(4)
	for _, s := range g.Slots {
		if int64(s.Type.Bytes()) > elem {
			elem = int64(s.Type.Bytes())
		}
	}
	return elem
}

// rewriteToShared rewrites the virtual kernel's spill accesses belonging to
// shared groups. Each group's sub-stack uses an element-interleaved layout —
// slot j of thread t lives at j*elem*BlockSize + t*elem — so a warp's
// accesses to one slot are consecutive in shared memory and (for 4-byte
// elements) bank-conflict free, mirroring how hardware lays out local
// memory. The per-thread address (base + tid*elem) is computed once at
// entry; each access then uses a static displacement.
func rewriteToShared(r *regalloc.Result, groups []Group, blockSize int) (*ptx.Kernel, error) {
	k := r.Virtual.Clone()

	// Map: spill-stack offset -> (group index, displacement).
	type target struct {
		group int
		off   int64
	}
	targets := make(map[int64]target)
	for gi := range groups {
		if !groups[gi].InShared {
			continue
		}
		elem := groupElem(&groups[gi])
		for j, s := range groups[gi].Slots {
			targets[s.Offset] = target{gi, int64(j) * elem * int64(blockSize)}
		}
	}

	// Declare shared arrays and compute per-group, per-thread addresses.
	addrRegs := make(map[int]ptx.Reg)
	var setup []ptx.Inst
	tidReg := k.NewReg(ptx.U32)
	setup = append(setup, ptx.Inst{
		Op: ptx.OpMov, Type: ptx.U32,
		Dst: ptx.R(tidReg), Srcs: []ptx.Operand{ptx.Spec(ptx.SpecTidX)},
		Guard: ptx.NoReg, Meta: ptx.MetaSpillAddr,
	})
	for gi := range groups {
		if !groups[gi].InShared {
			continue
		}
		elem := groupElem(&groups[gi])
		name := sharedStackName(groups[gi].Key)
		k.AddArray(ptx.ArrayDecl{
			Name:  name,
			Space: ptx.SpaceShared,
			Align: 8,
			Size:  elem * int64(len(groups[gi].Slots)) * int64(blockSize),
		})
		base := k.NewReg(ptx.U32)
		addr := k.NewReg(ptx.U32)
		addrRegs[gi] = addr
		setup = append(setup,
			ptx.Inst{Op: ptx.OpMov, Type: ptx.U32, Dst: ptx.R(base),
				Srcs: []ptx.Operand{ptx.Sym(name)}, Guard: ptx.NoReg,
				Meta: ptx.MetaSpillAddr},
			ptx.Inst{Op: ptx.OpMad, Type: ptx.U32, Dst: ptx.R(addr),
				Srcs:  []ptx.Operand{ptx.R(tidReg), ptx.Imm(elem), ptx.R(base)},
				Guard: ptx.NoReg, Meta: ptx.MetaSpillAddr},
		)
	}

	// Rewrite spill accesses of moved groups.
	remainingLocal := false
	for i := range k.Insts {
		in := &k.Insts[i]
		off, ok := spillAccess(in, r.BaseReg)
		if !ok {
			continue
		}
		t, move := targets[off]
		if !move {
			remainingLocal = true
			continue
		}
		mem := ptx.MemReg(addrRegs[t.group], t.off)
		in.Space = ptx.SpaceShared
		if in.Op == ptx.OpLd {
			in.Srcs[0] = mem
		} else {
			in.Dst = mem
		}
	}

	// Drop the local SpillStack machinery if nothing local remains.
	if !remainingLocal {
		var insts []ptx.Inst
		var carryLabel string
		for i := range k.Insts {
			in := k.Insts[i]
			if in.Op == ptx.OpMov && in.Dst.Kind == ptx.OperandReg &&
				in.Dst.Reg == r.BaseReg && len(in.Srcs) == 1 &&
				in.Srcs[0].Kind == ptx.OperandSym && in.Srcs[0].Sym == regalloc.SpillStackName {
				if in.Label != "" {
					carryLabel = in.Label
				}
				continue
			}
			if carryLabel != "" && in.Label == "" {
				in.Label = carryLabel
			}
			carryLabel = ""
			insts = append(insts, in)
		}
		k.Insts = insts
		var arrays []ptx.ArrayDecl
		for _, a := range k.Arrays {
			if a.Name == regalloc.SpillStackName {
				continue
			}
			arrays = append(arrays, a)
		}
		k.Arrays = arrays
	}

	k.Insts = append(setup, k.Insts...)
	return k, nil
}
