package spillopt

import (
	"testing"
	"testing/quick"

	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

// mixedPressureKernel creates register pressure from u32 and f32 values that
// all stay live until the end, so spilling is unavoidable under a reduced
// budget and sub-stacks of both types can exist.
func mixedPressureKernel(nInt, nFloat int) *ptx.Kernel {
	b := ptx.NewBuilder("mixed")
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")
	ints := b.Regs(ptx.U32, nInt)
	floats := b.Regs(ptx.F32, nFloat)
	for i, r := range ints {
		b.Mov(ptx.U32, r, ptx.Imm(int64(i+1)))
	}
	for i, r := range floats {
		b.Mov(ptx.F32, r, ptx.FImm(float64(i)+0.5))
	}
	isum := b.Reg(ptx.U32)
	b.Mov(ptx.U32, isum, ptx.Imm(0))
	for _, r := range ints {
		b.Add(ptx.U32, isum, ptx.R(isum), ptx.R(r))
	}
	fsum := b.Reg(ptx.F32)
	b.Mov(ptx.F32, fsum, ptx.FImm(0))
	for _, r := range floats {
		b.Add(ptx.F32, fsum, ptx.R(fsum), ptx.R(r))
	}
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(out, 0), ptx.R(isum))
	b.St(ptx.SpaceGlobal, ptx.F32, ptx.MemReg(out, 4), ptx.R(fsum))
	b.Exit()
	return b.Kernel()
}

func spilledAlloc(t *testing.T, k *ptx.Kernel, under int) (*regalloc.Result, regalloc.Options) {
	t.Helper()
	max, err := regalloc.MaxReg(k)
	if err != nil {
		t.Fatal(err)
	}
	opts := regalloc.Options{Regs: max - under}
	r, err := regalloc.Allocate(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Spills) == 0 {
		t.Fatal("test premise: no spills")
	}
	return r, opts
}

func TestKnapsackKnownOptimum(t *testing.T) {
	sizes := []int64{3, 4, 5}
	gains := []float64{4, 5, 6}
	mask, total := Knapsack(sizes, gains, 7)
	// Optimum: items 0+1 (size 7, gain 9).
	if total != 9 {
		t.Errorf("total = %v, want 9", total)
	}
	if !mask[0] || !mask[1] || mask[2] {
		t.Errorf("mask = %v, want [true true false]", mask)
	}
}

func TestKnapsackZeroCapacity(t *testing.T) {
	mask, total := Knapsack([]int64{1}, []float64{10}, 0)
	if mask[0] || total != 0 {
		t.Errorf("zero capacity selected items: %v %v", mask, total)
	}
}

func TestKnapsackMatchesBruteForce(t *testing.T) {
	f := func(rawSizes []uint8, rawGains []uint8, rawCap uint8) bool {
		n := len(rawSizes)
		if len(rawGains) < n {
			n = len(rawGains)
		}
		if n > 8 {
			n = 8
		}
		sizes := make([]int64, n)
		gains := make([]float64, n)
		for i := 0; i < n; i++ {
			sizes[i] = int64(rawSizes[i]%16 + 1)
			gains[i] = float64(rawGains[i] % 32)
		}
		capacity := int64(rawCap % 64)
		_, got := Knapsack(sizes, gains, capacity)

		best := 0.0
		for bits := 0; bits < 1<<n; bits++ {
			var sz int64
			var g float64
			for i := 0; i < n; i++ {
				if bits&(1<<i) != 0 {
					sz += sizes[i]
					g += gains[i]
				}
			}
			if sz <= capacity && g > best {
				best = g
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKnapsackMaskConsistentWithTotal(t *testing.T) {
	f := func(rawSizes []uint8, rawGains []uint8, rawCap uint16) bool {
		n := len(rawSizes)
		if len(rawGains) < n {
			n = len(rawGains)
		}
		if n > 10 {
			n = 10
		}
		sizes := make([]int64, n)
		gains := make([]float64, n)
		for i := 0; i < n; i++ {
			sizes[i] = int64(rawSizes[i]) + 1
			gains[i] = float64(rawGains[i])
		}
		capacity := int64(rawCap % 2048)
		mask, total := Knapsack(sizes, gains, capacity)
		var sz int64
		var g float64
		for i := range mask {
			if mask[i] {
				sz += sizes[i]
				g += gains[i]
			}
		}
		return sz <= capacity && g == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeMovesSpillsToShared(t *testing.T) {
	k := mixedPressureKernel(14, 6)
	r, opts := spilledAlloc(t, k, 6)
	blockSize := 64
	res, err := Optimize(r, opts, Options{
		SpareShmBytes: 16 * 1024,
		BlockSize:     blockSize,
	})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	moved := 0
	for _, g := range res.Groups {
		if g.InShared {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no sub-stack moved to shared memory despite ample spare")
	}
	if res.Overhead.Shareds() == 0 {
		t.Error("final kernel has no shared spill instructions")
	}
	before := r.Kernel.SpillOverhead()
	if res.Overhead.Locals() >= before.Locals() && moved > 0 {
		t.Errorf("local spill instructions did not decrease: %d -> %d",
			before.Locals(), res.Overhead.Locals())
	}
	if err := res.Alloc.Kernel.Validate(); err != nil {
		t.Errorf("optimized kernel invalid: %v", err)
	}
	// Shared arrays must exist and match the consumed bytes.
	var declared int64
	for _, a := range res.Alloc.Kernel.Arrays {
		if a.Space == ptx.SpaceShared {
			declared += a.Size
		}
	}
	if declared != res.SharedSpillBytes {
		t.Errorf("shared declared %d != accounted %d", declared, res.SharedSpillBytes)
	}
	if res.Alloc.UsedRegs > opts.Regs {
		t.Errorf("reallocation exceeded budget: %d > %d", res.Alloc.UsedRegs, opts.Regs)
	}
}

func TestOptimizeRespectsSpareLimit(t *testing.T) {
	k := mixedPressureKernel(14, 6)
	r, opts := spilledAlloc(t, k, 6)
	spare := int64(512)
	res, err := Optimize(r, opts, Options{SpareShmBytes: spare, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.SharedSpillBytes > spare {
		t.Errorf("consumed %d bytes of shared, spare was %d", res.SharedSpillBytes, spare)
	}
}

func TestOptimizeZeroSpareUnchanged(t *testing.T) {
	k := mixedPressureKernel(12, 4)
	r, opts := spilledAlloc(t, k, 4)
	res, err := Optimize(r, opts, Options{SpareShmBytes: 0, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc != r {
		t.Error("zero spare should return the input allocation")
	}
	for _, g := range res.Groups {
		if g.InShared {
			t.Error("group moved with zero spare")
		}
	}
}

func TestOptimizeNoSpillsPassthrough(t *testing.T) {
	k := mixedPressureKernel(4, 2)
	max, err := regalloc.MaxReg(k)
	if err != nil {
		t.Fatal(err)
	}
	opts := regalloc.Options{Regs: max}
	r, err := regalloc.Allocate(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(r, opts, Options{SpareShmBytes: 1 << 14, BlockSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc != r || len(res.Groups) != 0 {
		t.Error("no-spill input should pass through unchanged")
	}
}

func TestSplitStrategies(t *testing.T) {
	k := mixedPressureKernel(14, 6)
	r, _ := spilledAlloc(t, k, 6)
	byType := splitGroups(r.Spills, SplitByType)
	whole := splitGroups(r.Spills, SplitWhole)
	perVar := splitGroups(r.Spills, SplitPerVariable)

	if len(whole) != 1 {
		t.Errorf("whole split: %d groups, want 1", len(whole))
	}
	if len(perVar) != len(r.Spills) {
		t.Errorf("per-variable split: %d groups, want %d", len(perVar), len(r.Spills))
	}
	if len(byType) < 1 || len(byType) > len(r.Spills) {
		t.Errorf("by-type split: %d groups out of range", len(byType))
	}
	// Total per-thread bytes must be identical across strategies.
	sum := func(gs []Group) int64 {
		var s int64
		for _, g := range gs {
			s += g.PerThread
		}
		return s
	}
	if sum(byType) != sum(whole) || sum(whole) != sum(perVar) {
		t.Errorf("per-thread byte totals differ: %d / %d / %d",
			sum(byType), sum(whole), sum(perVar))
	}
}

func TestPerVariableSplitFinerPlacement(t *testing.T) {
	// With a spare that fits only part of the stack, the per-variable split
	// must achieve at least the gain of the whole-stack split.
	k := mixedPressureKernel(14, 6)
	r, opts := spilledAlloc(t, k, 6)
	half := (r.SpillStackBytes * 64) / 2
	resWhole, err := Optimize(r, opts, Options{SpareShmBytes: half, BlockSize: 64, Split: SplitWhole})
	if err != nil {
		t.Fatal(err)
	}
	resVar, err := Optimize(r, opts, Options{SpareShmBytes: half, BlockSize: 64, Split: SplitPerVariable})
	if err != nil {
		t.Fatal(err)
	}
	if resVar.MovedGain < resWhole.MovedGain {
		t.Errorf("per-variable gain %v < whole-stack gain %v", resVar.MovedGain, resWhole.MovedGain)
	}
}

func TestGainWeightsLoopAccesses(t *testing.T) {
	// A spilled variable accessed inside a loop must contribute ~10x gain
	// versus a straight-line access.
	b := ptx.NewBuilder("loopy")
	b.Param("out", ptx.U64)
	out := b.Reg(ptx.U64)
	b.LdParam(ptx.U64, out, "out")
	hot := b.Reg(ptx.U32) // accessed in loop
	b.Mov(ptx.U32, hot, ptx.Imm(1))
	// Pressure regs that stay live across the loop.
	regs := b.Regs(ptx.U32, 12)
	for i, r := range regs {
		b.Mov(ptx.U32, r, ptx.Imm(int64(i)))
	}
	i := b.Reg(ptx.U32)
	p := b.Reg(ptx.Pred)
	b.Mov(ptx.U32, i, ptx.Imm(0))
	b.Label("LOOP").Setp(ptx.CmpGe, ptx.U32, p, ptx.R(i), ptx.Imm(8))
	b.BraIf(p, false, "DONE")
	b.Add(ptx.U32, hot, ptx.R(hot), ptx.Imm(3))
	b.Add(ptx.U32, i, ptx.R(i), ptx.Imm(1))
	b.Bra("LOOP")
	b.Label("DONE")
	sum := b.Reg(ptx.U32)
	b.Mov(ptx.U32, sum, ptx.Imm(0))
	for _, r := range regs {
		b.Add(ptx.U32, sum, ptx.R(sum), ptx.R(r))
	}
	b.Add(ptx.U32, sum, ptx.R(sum), ptx.R(hot))
	b.St(ptx.SpaceGlobal, ptx.U32, ptx.MemReg(out, 0), ptx.R(sum))
	b.Exit()
	k := b.Kernel()

	max, err := regalloc.MaxReg(k)
	if err != nil {
		t.Fatal(err)
	}
	opts := regalloc.Options{Regs: max - 2}
	r, err := regalloc.Allocate(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Spills) == 0 {
		t.Skip("allocator avoided spilling in this configuration")
	}
	groups := splitGroups(r.Spills, SplitPerVariable)
	am := passes.NewAnalysisManager(r.Virtual)
	depth, err := am.InstLoopDepth()
	if err != nil {
		t.Fatal(err)
	}
	weighted := estimateGains(r, groups, false, depth)
	unweighted := estimateGains(r, groups, true, depth)
	anyHigher := false
	for i := range groups {
		if weighted[i] > unweighted[i] {
			anyHigher = true
		}
		if weighted[i] < unweighted[i] {
			t.Errorf("group %s: weighted gain %v below unweighted %v",
				groups[i].Key, weighted[i], unweighted[i])
		}
	}
	_ = anyHigher // loop-resident spills are allocator-dependent
}

func TestOptimizeRejectsBadBlockSize(t *testing.T) {
	k := mixedPressureKernel(12, 4)
	r, opts := spilledAlloc(t, k, 4)
	if _, err := Optimize(r, opts, Options{SpareShmBytes: 1024, BlockSize: 0}); err == nil {
		t.Error("Optimize accepted zero block size")
	}
}

func TestSplitStrings(t *testing.T) {
	if SplitByType.String() != "by-type" || SplitWhole.String() != "whole-stack" ||
		SplitPerVariable.String() != "per-variable" {
		t.Error("split strategy names wrong")
	}
}

func TestWorstFitSelectsLowGain(t *testing.T) {
	sizes := []int64{10, 10, 10}
	gains := []float64{5, 1, 3}
	mask, total := worstFit(sizes, gains, 20)
	if !mask[1] || !mask[2] || mask[0] {
		t.Errorf("worstFit mask = %v, want lowest-gain pair", mask)
	}
	if total != 4 {
		t.Errorf("worstFit total = %v, want 4", total)
	}
}

func TestGroupElemPadding(t *testing.T) {
	g := Group{Slots: []regalloc.SpillSlot{
		{Type: ptx.U32}, {Type: ptx.F64}, {Type: ptx.U32},
	}}
	if got := groupElem(&g); got != 8 {
		t.Errorf("groupElem = %d, want 8 (largest slot)", got)
	}
	g2 := Group{Slots: []regalloc.SpillSlot{{Type: ptx.F32}}}
	if got := groupElem(&g2); got != 4 {
		t.Errorf("groupElem = %d, want 4", got)
	}
}
