package crat_test

import (
	"strings"
	"testing"

	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/ptx"
	"crat/internal/regalloc"
	"crat/internal/workloads"
)

// fastProfile is a small register-pressured, cache-sensitive workload used
// for quick end-to-end pipeline checks.
func fastProfile() workloads.Profile {
	return workloads.Profile{
		Name: "integration", Kernel: "integ", Abbr: "ITG", Suite: "test",
		Block: 128, Grid: 6,
		Pressure: 10, ColdPressure: 24, Chain: 2,
		WSWords: 1024, Sweeps: 3, LoadsPerIter: 2,
		DefaultReg: 28,
	}
}

// TestEndToEndPipeline runs the complete CRAT flow on a fresh workload:
// analysis, profiling, pruning, allocation, spilling optimization, TPSC
// selection, and the four-mode comparison — asserting the paper's
// structural claims rather than absolute numbers.
func TestEndToEndPipeline(t *testing.T) {
	arch := gpusim.FermiConfig()
	app := fastProfile().App()

	d, err := core.Optimize(app, core.Options{Arch: arch, SpillShared: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Candidates) == 0 {
		t.Fatal("no candidates survived pruning")
	}
	chosen := d.Chosen
	if chosen.TLP < 1 || chosen.TLP > d.Analysis.OptTLP {
		t.Errorf("chosen TLP %d outside [1, OptTLP=%d]", chosen.TLP, d.Analysis.OptTLP)
	}
	if chosen.UsedRegs() > chosen.Reg {
		t.Errorf("chosen kernel uses %d regs over its %d budget", chosen.UsedRegs(), chosen.Reg)
	}
	if err := chosen.Kernel().Validate(); err != nil {
		t.Fatalf("chosen kernel invalid: %v", err)
	}

	// The transformed kernel must round-trip through PTX text.
	text := ptx.Print(chosen.Kernel())
	if _, err := ptx.Parse(text); err != nil {
		t.Fatalf("chosen kernel does not reparse: %v", err)
	}

	// Mode ordering: CRAT must not lose to OptTLP, and OptTLP must not
	// lose to MaxTLP, beyond a small tolerance.
	cycles := map[core.Mode]int64{}
	for _, m := range []core.Mode{core.ModeMaxTLP, core.ModeOptTLP, core.ModeCRATLocal, core.ModeCRAT} {
		st, _, err := core.RunMode(app, m, core.Options{Arch: arch, OptTLP: d.Analysis.OptTLP})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		cycles[m] = st.Cycles
	}
	if float64(cycles[core.ModeOptTLP]) > 1.02*float64(cycles[core.ModeMaxTLP]) {
		t.Errorf("OptTLP (%d) slower than MaxTLP (%d)", cycles[core.ModeOptTLP], cycles[core.ModeMaxTLP])
	}
	if float64(cycles[core.ModeCRAT]) > 1.05*float64(cycles[core.ModeOptTLP]) {
		t.Errorf("CRAT (%d) slower than OptTLP (%d)", cycles[core.ModeCRAT], cycles[core.ModeOptTLP])
	}
	if float64(cycles[core.ModeCRAT]) > 1.05*float64(cycles[core.ModeCRATLocal]) {
		t.Errorf("CRAT (%d) slower than CRAT-local (%d)", cycles[core.ModeCRAT], cycles[core.ModeCRATLocal])
	}
}

// TestTransformedKernelsFunctionallyEquivalent verifies paper §5.2's
// consistency validation across the whole pruned design space of the fast
// workload: every candidate kernel computes the same outputs as the
// virtual-register original.
func TestTransformedKernelsFunctionallyEquivalent(t *testing.T) {
	arch := gpusim.FermiConfig()
	p := fastProfile()
	app := p.App()
	d, err := core.Optimize(app, core.Options{Arch: arch, SpillShared: true})
	if err != nil {
		t.Fatal(err)
	}

	run := func(k *ptx.Kernel, regs, tlp int) []uint32 {
		mem := gpusim.NewMemory()
		params := app.Setup(mem)
		sim, err := gpusim.NewSimulator(arch, mem, gpusim.Launch{
			Kernel: k, Grid: app.Grid, Block: app.Block,
			Params: params, TLPLimit: tlp, RegsPerThread: regs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		out := params[1]
		res := make([]uint32, app.Block*app.Grid)
		for i := range res {
			res[i] = mem.ReadUint32(out + uint64(4*i))
		}
		return res
	}

	ref := run(app.Kernel, 0, 1)
	for _, c := range d.Candidates {
		got := run(c.Kernel(), c.UsedRegs(), c.TLP)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("candidate (reg=%d,TLP=%d) diverges at %d: %x vs %x",
					c.Reg, c.TLP, i, got[i], ref[i])
			}
		}
	}
}

// TestAllocatorPropertyOverBudgets is a property check over the whole
// feasible budget range of the integration kernel: allocations validate,
// respect the budget, and spill volume decreases monotonically as the
// budget grows.
func TestAllocatorPropertyOverBudgets(t *testing.T) {
	k := fastProfile().App().Kernel
	max, err := regalloc.MaxReg(k)
	if err != nil {
		t.Fatal(err)
	}
	prevSpills := 1 << 30
	for budget := 8; budget <= max; budget += 2 {
		res, err := regalloc.Allocate(k, regalloc.Options{Regs: budget})
		if err != nil {
			continue // below the feasibility floor
		}
		if res.UsedRegs > budget {
			t.Fatalf("budget %d: used %d", budget, res.UsedRegs)
		}
		if err := res.Kernel.Validate(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		// Spill volume trends down as the budget grows. The coloring
		// heuristic may pick a different victim set at adjacent budgets,
		// so allow a small non-monotonic blip but no real regression.
		spills := res.SpillLoads + res.SpillStores
		if float64(spills) > 1.1*float64(prevSpills)+2 {
			t.Errorf("budget %d: spill sites rose from %d to %d with more registers",
				budget, prevSpills, spills)
		}
		if spills < prevSpills {
			prevSpills = spills
		}
	}
	final, err := regalloc.Allocate(k, regalloc.Options{Regs: max})
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Spills) != 0 {
		t.Errorf("allocation at MaxReg=%d still spills %d values", max, len(final.Spills))
	}
}

// TestCratcHeaderShape pins the compiler driver's output contract: the
// transformed PTX parses and the kernel keeps its name.
func TestCratcShapedOutput(t *testing.T) {
	app := fastProfile().App()
	arch := gpusim.FermiConfig()
	d, err := core.Optimize(app, core.Options{Arch: arch, SpillShared: true})
	if err != nil {
		t.Fatal(err)
	}
	out := ptx.Print(d.Chosen.Kernel())
	if !strings.Contains(out, ".entry integ") {
		t.Errorf("output missing kernel entry:\n%s", out[:120])
	}
	if d.Chosen.Overhead.Locals()+d.Chosen.Overhead.Shareds() > 0 &&
		!strings.Contains(out, "SpillStack") && !strings.Contains(out, "SpillShm") {
		t.Error("spilling kernel lacks spill storage declarations")
	}
}
