// Package crat's top-level benchmarks regenerate each table and figure of
// the paper's evaluation (one bench per experiment, see DESIGN.md's
// per-experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// Each iteration performs the full experiment (simulations included), so
// b.N is typically 1; the reported ns/op is the cost of regenerating that
// figure. Custom metrics attach the headline numbers (geomean speedups,
// savings) so the benchmark log doubles as a results record.
package crat_test

import (
	"context"
	"io"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"crat/internal/backend"
	"crat/internal/buildinfo"
	"crat/internal/checkpoint"
	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/harness"
	"crat/internal/passes"
	"crat/internal/server"
	"crat/internal/workloads"
)

// Benchmarks share one session per architecture so that profiling runs and
// mode evaluations are paid once and each benchmark measures its own
// figure's incremental cost (mirroring how cmd/experiments runs the suite).
// The map is mutex-guarded so `go test -bench . -cpu N` stays safe.
var (
	sessionsMu sync.Mutex
	sessions   = map[string]*harness.Session{}
)

func sessionFor(b *testing.B, arch gpusim.Config) *harness.Session {
	b.Helper()
	sessionsMu.Lock()
	defer sessionsMu.Unlock()
	if s, ok := sessions[arch.Name]; ok {
		return s
	}
	s, err := harness.NewSession(arch)
	if err != nil {
		b.Fatal(err)
	}
	sessions[arch.Name] = s
	return s
}

// geomeanRow extracts the named column of a table's GEOMEAN/AVERAGE row.
func lastRowMetric(b *testing.B, t *harness.Table, col string) float64 {
	b.Helper()
	idx := -1
	for i, c := range t.Columns {
		if c != col {
			continue
		}
		if idx >= 0 {
			b.Fatalf("table %s has duplicate column %q (indices %d and %d)", t.ID, col, idx, i)
		}
		idx = i
	}
	if idx < 0 || len(t.Rows) == 0 {
		b.Fatalf("column %q not found in %s", col, t.ID)
	}
	last := t.Rows[len(t.Rows)-1]
	v, err := strconv.ParseFloat(last[idx], 64)
	if err != nil {
		b.Fatalf("metric %s/%s: %v", t.ID, col, err)
	}
	return v
}

func BenchmarkTable1Params(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01Throttling(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		t, err := s.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowMetric(b, t, "perf OptTLP"), "geomean-OptTLP-speedup")
	}
}

func BenchmarkFig02DesignSpace(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig03SelectedPoints(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05CacheImpact(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig06RegImpact(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig07Utilization(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08SpillChoice(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12SpillValidation(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Headline(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		t, err := s.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowMetric(b, t, "CRAT"), "geomean-CRAT-speedup")
		b.ReportMetric(lastRowMetric(b, t, "CRAT-local"), "geomean-CRATlocal-speedup")
	}
}

func BenchmarkFig14SelectedTLP(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		t, err := s.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowMetric(b, t, "CRAT blocks"), "avg-CRAT-TLP")
	}
}

func BenchmarkFig15RegUtilization(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		t, err := s.Figure15()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowMetric(b, t, "CRAT util"), "avg-CRAT-util")
	}
}

func BenchmarkFig16LocalAccesses(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		t, err := s.Figure16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowMetric(b, t, "reduction"), "avg-local-reduction")
	}
}

func BenchmarkEnergy(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		t, err := s.Energy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1-lastRowMetric(b, t, "CRAT/OptTLP"), "avg-energy-saving")
	}
}

func BenchmarkFig17Kepler(b *testing.B) {
	s := sessionFor(b, gpusim.KeplerConfig())
	for i := 0; i < b.N; i++ {
		t, err := s.Figure17()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowMetric(b, t, "CRAT speedup"), "geomean-CRAT-kepler")
	}
}

func BenchmarkFig18InputSensitivity(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure18(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19Insensitive(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		t, err := s.Figure19()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowMetric(b, t, "CRAT"), "geomean-CRAT-insensitive")
	}
}

func BenchmarkFig20StaticTLP(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		t, err := s.Figure20()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lastRowMetric(b, t, "CRAT-static"), "geomean-CRAT-static")
	}
}

func BenchmarkOverhead(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.Overhead(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationScheduler(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSpillCost(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationSpillCost(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSubstackSplit(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationSubstackSplit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPruning(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationPruning(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTPSC(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationTPSC(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBypass(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationBypass(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackendHeadToHead regenerates the optimization-backend
// head-to-head figure and reports, per registered backend, its
// union-selection wins and its cycle geomean normalized to crat. The
// backend-* metrics land in BENCH_<date>.json's "backends" section via
// cmd/benchjson, tracking how the competing candidate generators trade
// off across PRs.
func BenchmarkBackendHeadToHead(b *testing.B) {
	s := sessionFor(b, gpusim.FermiConfig())
	names := backend.Names()
	for i := 0; i < b.N; i++ {
		t, err := s.BackendHeadToHead()
		if err != nil {
			b.Fatal(err)
		}
		col := func(name string) int {
			for j, c := range t.Columns {
				if c == name {
					return j
				}
			}
			b.Fatalf("column %q not found in %s", name, t.ID)
			return -1
		}
		winCol, cratCol := col("winner"), col("crat cycles")
		wins := make(map[string]int)
		ratios := make(map[string][]float64)
		for _, row := range t.Rows {
			wins[row[winCol]]++
			cratCycles, err := strconv.ParseFloat(row[cratCol], 64)
			if err != nil {
				b.Fatal(err)
			}
			for _, name := range names {
				cycles, err := strconv.ParseFloat(row[col(name+" cycles")], 64)
				if err != nil {
					b.Fatal(err)
				}
				if cratCycles > 0 && cycles > 0 {
					ratios[name] = append(ratios[name], cratCycles/cycles)
				}
			}
		}
		for _, name := range names {
			b.ReportMetric(float64(wins[name]), "backend-"+name+"-wins")
			b.ReportMetric(harness.Geomean(ratios[name]), "backend-"+name+"-geomean-vs-crat")
		}
	}
}

// BenchmarkCheckpointResume measures the cost of resuming a checkpointed
// session versus recomputing: a cold pass persists one app's analysis and
// CRAT evaluation, then the timed pass resumes the journal and replays the
// same requests. checkpoint-hits / checkpoint-persisted record how much of
// the work the journal absorbed (0 hits would mean resume is broken).
func BenchmarkCheckpointResume(b *testing.B) {
	arch := gpusim.FermiConfig()
	p, ok := workloads.ByAbbr("STM")
	if !ok {
		b.Fatal("STM workload missing")
	}
	dir := b.TempDir()
	warm, err := harness.NewSession(arch)
	if err != nil {
		b.Fatal(err)
	}
	st, err := checkpoint.Open(filepath.Join(dir, "fermi"), warm.ConfigHash(), "bench", false)
	if err != nil {
		b.Fatal(err)
	}
	warm.SetCheckpoint(st)
	if _, _, err := warm.Mode(p, core.ModeCRAT); err != nil {
		b.Fatal(err)
	}
	persisted := st.Count()

	var hits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := checkpoint.Open(filepath.Join(dir, "fermi"), warm.ConfigHash(), "bench", true)
		if err != nil {
			b.Fatal(err)
		}
		s, err := harness.NewSession(arch)
		if err != nil {
			b.Fatal(err)
		}
		s.SetCheckpoint(st)
		if _, _, err := s.Mode(p, core.ModeCRAT); err != nil {
			b.Fatal(err)
		}
		hits = s.CheckpointHitCount()
	}
	b.ReportMetric(float64(hits), "checkpoint-hits")
	b.ReportMetric(float64(persisted), "checkpoint-persisted")
}

// BenchmarkPassTimings runs the full CRAT pipeline (pinned OptTLP and
// costs, so no simulations) on a representative workload and reports each
// pipeline pass's wall time and run count per optimization. The pass-*
// metrics land in BENCH_*.json's "passes" section via cmd/benchjson,
// tracking where compile time goes across PRs.
func BenchmarkPassTimings(b *testing.B) {
	arch := gpusim.FermiConfig()
	p, ok := workloads.ByAbbr("STM")
	if !ok {
		b.Fatal("STM workload missing")
	}
	app := p.App()
	opts := core.Options{
		Arch:        arch,
		OptTLP:      4,
		Costs:       gpusim.Costs{Local: 40, Shared: 4},
		SpillShared: true,
	}
	passes.ResetTimings()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(app, opts); err != nil {
			b.Fatal(err)
		}
	}
	for _, tm := range passes.Timings() {
		b.ReportMetric(float64(tm.Wall.Microseconds())/float64(b.N), "pass-"+tm.Pass+"-us")
		b.ReportMetric(float64(tm.Runs)/float64(b.N), "pass-"+tm.Pass+"-runs")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (warp
// instructions per second) on a representative workload, independent of
// the experiment harness.
func BenchmarkSimulatorThroughput(b *testing.B) {
	arch := gpusim.FermiConfig()
	p, _ := workloads.ByAbbr("STM")
	app := p.App()
	var warpInsts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := core.SimulateKernel(app, arch, app.Kernel, 0, 4)
		if err != nil {
			b.Fatal(err)
		}
		warpInsts += st.WarpInsts
	}
	b.ReportMetric(float64(warpInsts)/b.Elapsed().Seconds(), "warp-insts/s")
	// Environment attestation for benchjson: throughput numbers are only
	// comparable across snapshots when the recording conditions match, so
	// the run self-reports the conditions that have silently skewed past
	// snapshots (a -race build recorded BENCH_2026-08-05b.json at ~0.5x).
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "env-gomaxprocs")
	race := 0.0
	if buildinfo.RaceEnabled {
		race = 1.0
	}
	b.ReportMetric(race, "env-race")
	_ = io.Discard
}

// BenchmarkServiceThroughput measures cratd end-to-end: an in-process
// daemon (admission control, cache tiers, oracle machinery all live)
// driven by the closed-loop load generator. The svc-* metrics land in the
// Service section of BENCH_<date>.json alongside simulator throughput.
func BenchmarkServiceThroughput(b *testing.B) {
	srv, err := server.New(server.Config{Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var last *server.LoadReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := server.RunLoad(context.Background(), ts.URL, server.LoadOptions{
			Concurrency: 4,
			Requests:    32,
			Kernels:     8,
			Seed:        1,
			Block:       64,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Failed > 0 || rep.OK != rep.Requests {
			b.Fatalf("load run not clean: %+v", rep)
		}
		last = rep
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	b.ReportMetric(last.RPS, "svc-req/s")
	b.ReportMetric(ms(last.P50), "svc-p50-ms")
	b.ReportMetric(ms(last.P95), "svc-p95-ms")
	b.ReportMetric(ms(last.P99), "svc-p99-ms")
	b.ReportMetric(float64(last.Cached), "svc-cache-hits")
}
