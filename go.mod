module crat

go 1.22
