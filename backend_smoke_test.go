// Backend smoke: run every registered optimization backend over every
// seed workload with the PTX verifier enabled after every pass and the
// differential oracle gating the chosen kernel (make backend-smoke). A
// backend that emits malformed IR fails with the offending pass named; a
// backend that miscompiles fails the zero-divergence assertion instead of
// silently degrading.
package crat_test

import (
	"testing"

	"crat/internal/backend"
	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

// TestBackendSmoke compiles every seed workload once per registered
// backend, and once with the full backend union competing under one TPSC
// selection. OptTLP and the access costs are pinned so no simulations
// run; the oracle uses each app's real Setup inputs. In -short mode only
// the first workload of each sensitivity class runs.
func TestBackendSmoke(t *testing.T) {
	arch := gpusim.FermiConfig()
	profiles := workloads.All()
	if testing.Short() {
		var sensitive, insensitive bool
		short := profiles[:0]
		for _, p := range profiles {
			if (p.Sensitive && !sensitive) || (!p.Sensitive && !insensitive) {
				short = append(short, p)
			}
			if p.Sensitive {
				sensitive = true
			} else {
				insensitive = true
			}
		}
		profiles = short
	}
	names := backend.Names()
	for _, p := range profiles {
		p := p
		t.Run(p.Abbr, func(t *testing.T) {
			t.Parallel()
			app := p.App()
			opts := core.Options{
				Arch:              arch,
				OptTLP:            4,
				Costs:             gpusim.Costs{Local: 40, Shared: 4},
				VerifyEachPass:    true,
				VerifyEquivalence: true,
			}
			for _, name := range names {
				o := opts
				o.Backends = []string{name}
				d, err := core.Optimize(app, o)
				if err != nil {
					t.Fatalf("Optimize(backend=%s): %v", name, err)
				}
				if d.Degraded {
					t.Fatalf("backend %s diverged from the oracle: %v", name, d.Divergence)
				}
				if d.Backend != name {
					t.Fatalf("backend %s: decision attributes the win to %q", name, d.Backend)
				}
				if d.Chosen.Kernel() == nil {
					t.Fatalf("backend %s: no chosen kernel", name)
				}
			}
			// The union: every backend's candidates competing under one
			// selection must still be oracle-clean and attribute the win
			// to an enabled backend.
			o := opts
			o.Backends = names
			d, err := core.Optimize(app, o)
			if err != nil {
				t.Fatalf("Optimize(union): %v", err)
			}
			if d.Degraded {
				t.Fatalf("union winner %s diverged from the oracle: %v", d.Backend, d.Divergence)
			}
			won := false
			for _, name := range names {
				if d.Backend == name {
					won = true
				}
			}
			if !won {
				t.Fatalf("union decision came from unknown backend %q", d.Backend)
			}
		})
	}
}
