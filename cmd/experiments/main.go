// Command experiments regenerates the tables and figures of the CRAT paper
// (MICRO 2015) evaluation on the simulated GPU.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig13,fig14,fig15
//	experiments -run all -j 4
//	experiments -list
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"crat/internal/harness"
	"crat/internal/pool"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	workers := flag.Int("j", pool.DefaultWorkers(),
		"max parallel simulations (1 = serial; output is identical either way)")
	flag.Parse()

	if *list || *runFlag == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			arch := e.Arch
			if arch == "" {
				arch = "fermi"
			}
			fmt.Printf("  %-14s %-8s %s\n", e.ID, arch, e.Desc)
		}
		if *runFlag == "" {
			fmt.Println("\nselect with -run <ids> or -run all")
		}
		return
	}

	start := time.Now()
	ids := strings.Split(*runFlag, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	if err := harness.RunExperiments(ids, *workers, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Second))
}
