// Command experiments regenerates the tables and figures of the CRAT paper
// (MICRO 2015) evaluation on the simulated GPU.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig13,fig14,fig15
//	experiments -run all -j 4
//	experiments -run all -timeout 10m -checkpoint ckpt
//	experiments -run all -checkpoint ckpt -resume
//	experiments -list
//
// A run is safely interruptible: Ctrl-C (or -timeout expiring) stops
// dispatching new simulations, drains the workers, flushes the checkpoint
// journal, and reports what survived. A later invocation with -checkpoint
// and -resume picks up from the persisted results without re-simulating
// them; the output is byte-identical to an uninterrupted run.
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"crat/internal/buildinfo"
	"crat/internal/harness"
	"crat/internal/pool"
)

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	workers := flag.Int("j", pool.DefaultWorkers(),
		"max parallel simulations (1 = serial; output is identical either way)")
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget for the whole run (0 = none); on expiry in-flight simulations abort with a deadline fault")
	ckptDir := flag.String("checkpoint", "",
		"directory for the crash-safe result journal (empty = no checkpointing)")
	resume := flag.Bool("resume", false,
		"load results already persisted in -checkpoint instead of starting fresh")
	strict := flag.Bool("strict", false,
		"exit 1 if any fault was captured (default: degrade to ERROR rows and exit 0)")
	backends := flag.String("backends", "",
		"comma-separated optimization backends for the head-to-head experiment (empty = every registered backend)")
	passTimes := flag.Bool("pass-times", false,
		"after the run, print the per-pass wall-time and IR-delta table (opt-in: kept out of the golden output)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Print("experiments")
		return
	}

	if *list || *runFlag == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			arch := e.Arch
			if arch == "" {
				arch = "fermi"
			}
			fmt.Printf("  %-14s %-8s %s\n", e.ID, arch, e.Desc)
		}
		if *runFlag == "" {
			fmt.Println("\nselect with -run <ids> or -run all")
		}
		return
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -checkpoint DIR")
		os.Exit(2)
	}

	// SIGINT cancels the run context: workers drain, completed results are
	// already journaled, and the survival report below still prints.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	ids := strings.Split(*runFlag, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	opts := harness.RunOptions{
		Workers:       *workers,
		Strict:        *strict,
		CheckpointDir: *ckptDir,
		Resume:        *resume,
	}
	for _, name := range strings.Split(*backends, ",") {
		if name = strings.TrimSpace(name); name != "" {
			opts.Backends = append(opts.Backends, name)
		}
	}
	rep, err := harness.RunExperimentsCtx(ctx, ids, opts, os.Stdout)
	if *passTimes {
		harness.PassTimingTable().Render(os.Stdout)
	}
	if rep != nil && *ckptDir != "" {
		fmt.Printf("checkpoint: %d result(s) persisted in %s (%d inherited via -resume, %d served from checkpoint)\n",
			rep.Persisted, *ckptDir, rep.Loaded, rep.CkptHits)
	}
	if rep != nil && ctx.Err() != nil {
		// Interrupted (Ctrl-C) or out of budget (-timeout): say what survived.
		total := len(harness.Experiments())
		if ids[0] != "all" {
			total = len(ids)
		}
		done := total - len(rep.Failed)
		fmt.Printf("interrupted (%v): %d/%d experiment(s) completed cleanly, %d fault(s) captured\n",
			ctx.Err(), done, total, rep.Faults)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Second))
}
