// Command benchjson converts `go test -bench` output into a JSON metrics
// record, seeding the performance trajectory across PRs.
//
// It reads benchmark output on stdin and writes one JSON document with every
// benchmark's ns/op plus all custom metrics (geomean speedups, warp-insts/s,
// ...), and a flattened "headline" map of the custom metrics for quick
// diffing between snapshots.
//
// Usage:
//
//	go test -bench . -benchtime=1x | benchjson -o BENCH_$(date +%F).json
//
// See the Makefile's bench-json target.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"crat/internal/buildinfo"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Environment records the conditions the benchmarks ran under. Throughput
// snapshots are only comparable when these match; BENCH_2026-08-05b.json's
// ~0.5x throughput anomaly was a race-enabled run recorded without any
// marker, which this block (and the default refusal below) prevents.
type Environment struct {
	// GOMAXPROCS/Race come from the test binary itself (self-reported as
	// env-* benchmark metrics), not from benchjson's own process — the two
	// can be built differently.
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	Race       string `json:"race"` // "on", "off", or "unknown" (old logs)
	// CPU/Goos/Goarch are parsed from `go test -bench` header lines.
	CPU    string `json:"cpu,omitempty"`
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	// Build attributes the snapshot (module version + VCS revision).
	Build     string `json:"build"`
	GoVersion string `json:"go_version"`
}

// Report is the top-level JSON document.
type Report struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	// Build attributes the snapshot to the binary that produced it
	// (module version + VCS revision), so BENCH files are comparable
	// across checkouts.
	Build       string      `json:"build"`
	Environment Environment `json:"environment"`
	Benchmarks  []Benchmark `json:"benchmarks"`
	// Headline flattens every custom (non-ns/op, non-allocation) metric
	// across all benchmarks; duplicate units keep the last value seen.
	Headline map[string]float64 `json:"headline"`
	// Checkpoint collects the durability counters ("checkpoint-*" units,
	// e.g. checkpoint-hits from BenchmarkCheckpointResume) separately from
	// the paper's headline metrics: they track the resume machinery, not
	// simulated results.
	Checkpoint map[string]float64 `json:"checkpoint,omitempty"`
	// Passes collects the compile-time instrumentation ("pass-*" units
	// from BenchmarkPassTimings): per-pipeline-pass wall time and run
	// counts. Like Checkpoint, they describe the compiler itself rather
	// than simulated results, so they stay out of Headline.
	Passes map[string]float64 `json:"passes,omitempty"`
	// Service collects the cratd daemon metrics ("svc-*" units from
	// BenchmarkServiceThroughput and `cratload -bench`): request
	// throughput, latency percentiles, sheds, cache hits, and — when the
	// load ran against a cratgw fleet — the gateway's svc-hedges and
	// svc-failovers counters scraped from its /statsz.
	Service map[string]float64 `json:"service,omitempty"`
	// Backends collects the optimization-backend head-to-head metrics
	// ("backend-*" units from BenchmarkBackendHeadToHead): per-backend
	// union-selection wins and cycle geomeans vs crat. They compare
	// candidate-generation strategies, not the paper's headline results,
	// so they get their own section.
	Backends map[string]float64 `json:"backends,omitempty"`
}

// parseLine parses a `go test -bench` result line, e.g.
//
//	BenchmarkFig13Headline-4  1  86239180000 ns/op  1.25 geomean-CRAT-speedup
//
// Returns ok=false for non-benchmark lines (goos/pkg headers, PASS, ...).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// Strip the -N cpu-count suffix so names are stable across machines.
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name = b.Name[:i]
		}
	}
	// Remaining fields are (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, true
}

// headlineUnit reports whether a metric unit belongs in the flattened
// headline map (custom experiment metrics, not allocation accounting).
func headlineUnit(unit string) bool {
	switch unit {
	case "B/op", "allocs/op", "MB/s":
		return false
	}
	return true
}

func run(out string, allowRace bool) error {
	rep := Report{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Build:     buildinfo.String(),
		Environment: Environment{
			Race:      "unknown",
			Build:     buildinfo.String(),
			GoVersion: runtime.Version(),
		},
		Headline: map[string]float64{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// `go test -bench` header lines describe the machine.
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.Environment.CPU = strings.TrimSpace(v)
			continue
		}
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			rep.Environment.Goos = strings.TrimSpace(v)
			continue
		}
		if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			rep.Environment.Goarch = strings.TrimSpace(v)
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		// env-* metrics are the test binary's self-reported run conditions;
		// they belong in the environment block, not among the results.
		for unit, v := range b.Metrics {
			switch unit {
			case "env-gomaxprocs":
				rep.Environment.GOMAXPROCS = int(v)
			case "env-race":
				if v != 0 {
					rep.Environment.Race = "on"
				} else {
					rep.Environment.Race = "off"
				}
			default:
				continue
			}
			delete(b.Metrics, unit)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		for unit, v := range b.Metrics {
			if strings.HasPrefix(unit, "checkpoint-") {
				if rep.Checkpoint == nil {
					rep.Checkpoint = map[string]float64{}
				}
				rep.Checkpoint[unit] = v
				continue
			}
			if strings.HasPrefix(unit, "pass-") {
				if rep.Passes == nil {
					rep.Passes = map[string]float64{}
				}
				rep.Passes[unit] = v
				continue
			}
			if strings.HasPrefix(unit, "svc-") {
				if rep.Service == nil {
					rep.Service = map[string]float64{}
				}
				rep.Service[unit] = v
				continue
			}
			if strings.HasPrefix(unit, "backend-") {
				if rep.Backends == nil {
					rep.Backends = map[string]float64{}
				}
				rep.Backends[unit] = v
				continue
			}
			if headlineUnit(unit) {
				rep.Headline[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	if rep.Environment.Race == "on" && !allowRace {
		return fmt.Errorf("benchjson: refusing to record a race-enabled benchmark run " +
			"(throughput is not comparable to race-off snapshots; pass -allow-race to tag and record anyway)")
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks, %d headline metrics to %s\n",
		len(rep.Benchmarks), len(rep.Headline), out)
	return nil
}

func main() {
	out := flag.String("o", "-", "output file ('-' = stdout)")
	allowRace := flag.Bool("allow-race", false, "record race-enabled runs (tagged in the environment block) instead of refusing")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Print("benchjson")
		return
	}
	if err := run(*out, *allowRace); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
