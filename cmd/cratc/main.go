// Command cratc is the CRAT optimizing compiler driver: it reads a PTX
// kernel, runs coordinated register allocation and TLP optimization for a
// target architecture and launch shape, and writes the transformed PTX
// (physical registers, spill code, shared-memory sub-stacks) together with
// the chosen (reg, TLP) configuration.
//
// Usage:
//
//	cratc -in kernel.ptx -block 128 [-grid 12] [-arch fermi|kepler]
//	      [-reg N] [-tlp N] [-no-shared-spill] [-backend a,b] [-out out.ptx]
//
// With -reg (and optionally -tlp) the design-space search is skipped and
// the kernel is allocated at exactly that budget — the "max regcount"
// workflow. Without them, cratc explores the pruned design space and picks
// the TPSC winner; because OptTLP profiling needs input data the tool does
// not have, OptTLP defaults to the static occupancy bound unless -opttlp
// is supplied. -backend selects which optimization backends generate
// candidates for that search (internal/backend; every registered backend
// competes under one TPSC selection when several are listed).
//
// With -verify the transformed kernel is differentially validated against
// the input kernel on generated inputs (internal/oracle): PASS or
// DIVERGENCE is reported per kernel, and a divergence exits non-zero
// without writing output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"crat/internal/backend"
	"crat/internal/buildinfo"
	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/oracle"
	"crat/internal/passes"
	"crat/internal/ptx"
	"crat/internal/regalloc"
	"crat/internal/spillopt"
)

func main() {
	in := flag.String("in", "", "input PTX file (required)")
	out := flag.String("out", "", "output PTX file (default stdout)")
	kernelName := flag.String("kernel", "", "kernel to optimize when the module has several (paper: \"we only focus on the most time-consuming kernel\")")
	archFlag := flag.String("arch", "fermi", "target architecture: fermi or kepler")
	block := flag.Int("block", 0, "threads per block (required)")
	grid := flag.Int("grid", 1, "thread blocks per launch (used by -verify executions)")
	regCap := flag.Int("reg", 0, "allocate at exactly this register budget (skip search)")
	tlpFlag := flag.Int("tlp", 0, "thread-block TLP limit for spill planning")
	optTLP := flag.Int("opttlp", 0, "optimal TLP (default: occupancy at the default registers)")
	noShared := flag.Bool("no-shared-spill", false, "disable the shared-memory spilling optimization")
	backendsFlag := flag.String("backend", "", "comma-separated optimization backends for the design-space search (default: the CRAT strategy; see -passes); registered: "+strings.Join(backend.Names(), ","))
	coalesceFlag := flag.Bool("coalesce", false, "run conservative copy coalescing before coloring (useful on SSA-style nvcc PTX)")
	verify := flag.Bool("verify", false, "differentially validate the transformed kernel against the input on generated inputs; exit non-zero on divergence")
	verifyRuns := flag.Int("verify-runs", 0, "input sets for -verify (0 = oracle default)")
	verifySeed := flag.Int64("verify-seed", 0, "base input-generation seed for -verify")
	verbose := flag.Bool("v", false, "print the analysis and candidate table")
	listPasses := flag.Bool("passes", false, "list the pipeline passes in execution order and exit")
	verifyPasses := flag.Bool("verify-passes", false, "run the PTX verifier on the working kernel after every pipeline pass (fail fast naming the pass)")
	dumpAfter := flag.String("dump-after", "", "print the working kernel to stderr after every execution of the named pass")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Print("cratc")
		return
	}

	backends := splitBackends(*backendsFlag)
	if _, err := backend.Resolve(backends); err != nil {
		check(err)
	}

	if *listPasses {
		// Include every backend-registered pass: nil lists the full
		// registry, an explicit -backend narrows to that pipeline.
		for _, p := range core.PipelinePassesFor(backends) {
			fmt.Printf("%-13s %s\n", p.Name, p.Desc)
		}
		return
	}

	if *in == "" || *block <= 0 {
		fmt.Fprintln(os.Stderr, "cratc: -in and -block are required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	check(err)
	module, err := ptx.ParseModule(string(src))
	check(err)
	var kernel *ptx.Kernel
	switch {
	case len(module.Kernels) == 0:
		check(fmt.Errorf("no kernels in %s", *in))
	case *kernelName != "":
		k, ok := module.Kernel(*kernelName)
		if !ok {
			check(fmt.Errorf("kernel %q not found in %s", *kernelName, *in))
		}
		kernel = k
	case len(module.Kernels) == 1:
		kernel = module.Kernels[0]
	default:
		names := make([]string, len(module.Kernels))
		for i, k := range module.Kernels {
			names[i] = k.Name
		}
		check(fmt.Errorf("module has %d kernels (%v); select one with -kernel", len(names), names))
	}
	check(kernel.Validate())

	arch := gpusim.FermiConfig()
	if *archFlag == "kepler" {
		arch = gpusim.KeplerConfig()
	}

	var dump func(pass string, k *ptx.Kernel)
	if *dumpAfter != "" {
		dump = func(pass string, k *ptx.Kernel) {
			if pass == *dumpAfter {
				fmt.Fprintf(os.Stderr, "// after pass %s\n%s", pass, ptx.Print(k))
			}
		}
	}

	var result *ptx.Kernel
	var chosenReg, chosenTLP int

	if *regCap > 0 {
		if len(backends) > 0 {
			check(fmt.Errorf("-backend selects candidate generators for the design-space search; it cannot be combined with the fixed-budget -reg mode"))
		}
		// Fixed-budget mode: the allocation and spilling stages still run as
		// passes, under a locally-built manager.
		pm := &passes.Manager{VerifyEach: *verifyPasses, DumpAfter: dump}
		allocOpts := regalloc.Options{Regs: *regCap, Coalesce: *coalesceFlag}
		alloc, err := regalloc.AllocateWith(pm, kernel, allocOpts)
		check(err)
		tlp := *tlpFlag
		if tlp == 0 {
			tlp = arch.Occupancy(alloc.UsedRegs, kernel.SharedBytes(), *block)
		}
		result = alloc.Kernel
		if !*noShared && len(alloc.Spills) > 0 && tlp > 0 {
			res, err := spillopt.OptimizeWith(pm, alloc, allocOpts, spillopt.Options{
				SpareShmBytes: core.SpareShm(arch, kernel.SharedBytes(), tlp),
				BlockSize:     *block,
			})
			check(err)
			result = res.Alloc.Kernel
		}
		chosenReg, chosenTLP = *regCap, tlp
	} else {
		app := core.App{Name: kernel.Name, Kernel: kernel, Block: *block, Grid: 1}
		a, err := core.Analyze(app, arch)
		check(err)
		opt := *optTLP
		if opt == 0 {
			opt = a.MaxTLP
		}
		d, err := core.Optimize(app, core.Options{
			Arch: arch, OptTLP: opt, SpillShared: !*noShared, Coalesce: *coalesceFlag,
			Backends:       backends,
			VerifyEachPass: *verifyPasses, DumpAfter: dump,
		})
		check(err)
		if *verbose {
			fmt.Fprintf(os.Stderr, "analysis: MaxReg=%d MinReg=%d MaxTLP=%d OptTLP=%d ShmSize=%d\n",
				a.MaxReg, a.MinReg, a.MaxTLP, opt, a.ShmSize)
			for _, c := range d.Candidates {
				fmt.Fprintf(os.Stderr, "candidate backend=%-10s reg=%-3d tlp=%d spills(local=%d shm=%d others=%d) tpsc=%.2f\n",
					c.Backend, c.Reg, c.TLP, c.Overhead.Locals(), c.Overhead.Shareds(), c.Overhead.AddrInsts, c.TPSC)
			}
			fmt.Fprintf(os.Stderr, "winner: backend=%s\n", d.Backend)
		}
		result = d.Chosen.Kernel()
		chosenReg, chosenTLP = d.Chosen.UsedRegs(), d.Chosen.TLP
	}

	if *verify {
		d, err := oracle.Check(kernel, result, "cratc", oracle.Options{
			Grid: *grid, Block: *block, Runs: *verifyRuns, Seed: *verifySeed,
		})
		check(err)
		if d != nil {
			fmt.Fprintf(os.Stderr, "cratc: DIVERGENCE %s: %v\n", kernel.Name, d)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cratc: PASS %s (reg=%d tlp=%d)\n", kernel.Name, chosenReg, chosenTLP)
	}

	// Re-emit the whole module with the optimized kernel swapped in.
	for i, k := range module.Kernels {
		if k == kernel {
			module.Kernels[i] = result
		}
	}
	text := ptx.PrintModule(module)
	header := fmt.Sprintf("// cratc: arch=%s block=%d kernel=%s reg=%d tlp=%d\n",
		arch.Name, *block, result.Name, chosenReg, chosenTLP)
	if *out == "" {
		fmt.Print(header + text)
	} else {
		check(os.WriteFile(*out, []byte(header+text), 0o644))
	}
	fmt.Fprintf(os.Stderr, "cratc: chose reg=%d tlp=%d\n", chosenReg, chosenTLP)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cratc:", err)
		os.Exit(1)
	}
}

// splitBackends parses a comma-separated -backend/-backends value,
// dropping empty elements so "a,,b" and trailing commas are forgiven.
func splitBackends(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}
