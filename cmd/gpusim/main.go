// Command gpusim runs a PTX kernel on the cycle-level SM simulator and
// prints the collected statistics. Kernel parameters are bound to
// freshly-allocated, pattern-initialized buffers: each pointer parameter
// gets -bytes of memory filled with a float32 ramp, scalar parameters take
// the values supplied with -scalars in declaration order.
//
// Usage:
//
//	gpusim -in kernel.ptx -grid 8 -block 128 [-arch fermi|kepler]
//	       [-tlp N] [-regs N] [-bytes 65536] [-scalars 100,42]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"crat/internal/buildinfo"
	"crat/internal/gpusim"
	"crat/internal/ptx"
)

func main() {
	in := flag.String("in", "", "input PTX file (required)")
	archFlag := flag.String("arch", "fermi", "fermi or kepler")
	grid := flag.Int("grid", 1, "thread blocks")
	block := flag.Int("block", 128, "threads per block")
	tlp := flag.Int("tlp", 0, "TLP limit (0 = hardware maximum)")
	regs := flag.Int("regs", 0, "registers/thread for occupancy (0 = from kernel)")
	bufBytes := flag.Int64("bytes", 1<<20, "bytes allocated per pointer parameter")
	scalars := flag.String("scalars", "", "comma-separated values for scalar parameters")
	sched := flag.String("sched", "", "override scheduler: gto or lrr")
	tracePath := flag.String("trace", "", "write a per-issue trace to this file")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Print("gpusim")
		return
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "gpusim: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	check(err)
	kernel, err := ptx.Parse(string(src))
	check(err)
	check(ptx.Verify(kernel, "parse"))

	arch := gpusim.FermiConfig()
	if *archFlag == "kepler" {
		arch = gpusim.KeplerConfig()
	}
	switch *sched {
	case "lrr":
		arch.Scheduler = gpusim.SchedLRR
	case "gto", "":
	default:
		check(fmt.Errorf("unknown scheduler %q", *sched))
	}

	var scalarVals []uint64
	if *scalars != "" {
		for _, s := range strings.Split(*scalars, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
			check(err)
			scalarVals = append(scalarVals, v)
		}
	}

	mem := gpusim.NewMemory()
	var params []uint64
	si := 0
	for _, p := range kernel.Params {
		if p.Type == ptx.U64 {
			base := mem.Alloc(*bufBytes)
			for off := int64(0); off < *bufBytes; off += 4 {
				mem.WriteFloat32(base+uint64(off), float32(off/4%17)*0.25)
			}
			params = append(params, base)
			continue
		}
		if si < len(scalarVals) {
			params = append(params, scalarVals[si])
			si++
		} else {
			params = append(params, 0)
		}
	}

	launch := gpusim.Launch{
		Kernel: kernel, Grid: *grid, Block: *block,
		Params: params, TLPLimit: *tlp, RegsPerThread: *regs,
	}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		check(err)
		defer tf.Close()
		launch.Trace = tf
	}
	sim, err := gpusim.NewSimulator(arch, mem, launch)
	check(err)
	st, err := sim.Run()
	if err != nil {
		var f *gpusim.Fault
		if errors.As(err, &f) {
			fmt.Fprintf(os.Stderr, "gpusim: simulation fault\n")
			fmt.Fprintf(os.Stderr, "  kind    %s\n", f.Kind)
			fmt.Fprintf(os.Stderr, "  kernel  %s\n", f.Kernel)
			if f.PC >= 0 {
				fmt.Fprintf(os.Stderr, "  pc      %d  (%s)\n", f.PC, f.Disasm)
			}
			if f.Warp >= 0 {
				fmt.Fprintf(os.Stderr, "  warp    %d (block %d)\n", f.Warp, f.Block)
			}
			fmt.Fprintf(os.Stderr, "  cycle   %d\n", f.Cycle)
			fmt.Fprintf(os.Stderr, "  detail  %v\n", err)
			os.Exit(1)
		}
		check(err)
	}

	fmt.Printf("kernel           %s\n", kernel.Name)
	fmt.Printf("cycles           %d\n", st.Cycles)
	fmt.Printf("IPC              %.3f\n", st.IPC())
	fmt.Printf("warp insts       %d\n", st.WarpInsts)
	fmt.Printf("thread insts     %d\n", st.ThreadInsts)
	fmt.Printf("concurrent TLP   %d (regs/thread %d, shm/block %d)\n",
		st.ConcurrentBlocks, st.RegsPerThread, st.SharedPerBlock)
	fmt.Printf("L1 hit rate      %.3f (%d/%d)\n", st.L1HitRate(), st.L1Hits, st.L1Accesses)
	fmt.Printf("L2 hit rate      %.3f\n", st.L2HitRate())
	fmt.Printf("DRAM bytes       %d\n", st.DRAMBytes)
	fmt.Printf("stalls           congestion=%d memdata=%d alu=%d barrier=%d empty=%d\n",
		st.StallCongestion, st.StallMemData, st.StallALU, st.StallBarrier, st.StallEmpty)
	fmt.Printf("global ld/st     %d/%d\n", st.GlobalLoads, st.GlobalStores)
	fmt.Printf("local  ld/st     %d/%d (spill ops %d)\n", st.LocalLoads, st.LocalStores, st.SpillLocalOps)
	fmt.Printf("shared ld/st     %d/%d (bank-conflict cycles %d)\n", st.SharedLoads, st.SharedStores, st.BankConflictCycles)
	e := gpusim.DefaultEnergyModel().Energy(arch, st)
	fmt.Printf("energy           %.3e J\n", e)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(1)
	}
}
