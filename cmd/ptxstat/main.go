// Command ptxstat prints the static analyses CRAT runs on a PTX kernel:
// instruction mix, control-flow graph, loop nesting, live-range pressure,
// the computation/memory segmentation, register requirements, and the
// occupancy staircase on a target architecture.
//
// Usage:
//
//	ptxstat -in kernel.ptx [-arch fermi|kepler] [-block 128] [-cfg] [-ranges]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"crat/internal/buildinfo"
	"crat/internal/cfg"
	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/ptx"
	"crat/internal/regalloc"
)

func main() {
	in := flag.String("in", "", "input PTX file (required)")
	archFlag := flag.String("arch", "fermi", "fermi or kepler")
	block := flag.Int("block", 128, "threads per block for the staircase")
	showCFG := flag.Bool("cfg", false, "print basic blocks and edges")
	showRanges := flag.Bool("ranges", false, "print per-register live ranges")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Print("ptxstat")
		return
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "ptxstat: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	check(err)
	kernel, err := ptx.Parse(string(src))
	check(err)
	check(kernel.Validate())

	arch := gpusim.FermiConfig()
	if *archFlag == "kepler" {
		arch = gpusim.KeplerConfig()
	}

	// Instruction mix.
	stats := kernel.StaticStats()
	n32, n64, npred := kernel.RegCounts()
	fmt.Printf("kernel %s\n", kernel.Name)
	fmt.Printf("  instructions     %d (loads %d, stores %d, branches %d, barriers %d, sfu %d)\n",
		stats.Insts, stats.Loads, stats.Stores, stats.Branches, stats.Barriers, stats.SFU)
	fmt.Printf("  memory spaces    global %d, shared %d, local %d\n",
		stats.GlobalOps, stats.SharedOps, stats.LocalOps)
	fmt.Printf("  virtual regs     %d x 32-bit, %d x 64-bit, %d predicates\n", n32, n64, npred)
	fmt.Printf("  shared memory    %d B/block, local %d B/thread\n",
		kernel.SharedBytes(), kernel.LocalBytes())

	// CFG and loops.
	g, err := cfg.Build(kernel)
	check(err)
	depth := g.LoopDepth()
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	fmt.Printf("  basic blocks     %d (max loop depth %d)\n", g.NumBlocks()-1, maxDepth)
	if *showCFG {
		for _, b := range g.Blocks {
			if b.Index == g.ExitIndex {
				fmt.Printf("    B%-3d (exit)\n", b.Index)
				continue
			}
			fmt.Printf("    B%-3d insts [%d,%d) depth %d -> %v\n",
				b.Index, b.Start, b.End, depth[b.Index], b.Succs)
		}
	}

	// Liveness and pressure.
	lv := cfg.ComputeLiveness(g)
	fmt.Printf("  peak live slots  %d (32-bit units)\n", lv.MaxLivePressure())
	if *showRanges {
		ranges := lv.LiveRanges()
		sort.Slice(ranges, func(a, b int) bool { return ranges[a].Weight > ranges[b].Weight })
		fmt.Println("  hottest live ranges (weighted accesses):")
		for i, r := range ranges {
			if i >= 10 || r.Start < 0 {
				break
			}
			fmt.Printf("    reg %-4d [%4d,%4d] uses %-3d defs %-3d weight %.0f\n",
				r.Reg, r.Start, r.End, r.Uses, r.Defs, r.Weight)
		}
	}

	// Register requirements and the occupancy staircase.
	maxReg, err := regalloc.MaxReg(kernel)
	check(err)
	fmt.Printf("  MaxReg           %d   MinReg %d (on %s)\n", maxReg, arch.MinReg(), arch.Name)

	segs, err := core.Segments(kernel)
	check(err)
	comp, mem := 0, 0
	for _, s := range segs {
		if s.Kind == core.SegMemory {
			mem++
		} else {
			comp++
		}
	}
	fmt.Printf("  segments         %d compute / %d memory\n", comp, mem)

	app := core.App{Name: kernel.Name, Kernel: kernel, Block: *block, Grid: 1}
	a, err := core.Analyze(app, arch)
	check(err)
	stairs := a.Staircase(arch)
	tlps := make([]int, 0, len(stairs))
	for t := range stairs {
		tlps = append(tlps, t)
	}
	sort.Ints(tlps)
	fmt.Printf("  staircase @%d threads/block (TLP -> rightmost reg):", *block)
	for _, t := range tlps {
		fmt.Printf(" %d->%d", t, stairs[t])
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptxstat:", err)
		os.Exit(1)
	}
}
