// Command cratload is the closed-loop load generator for cratd: it drives
// POST /v1/compile with a deterministic corpus of generated kernels and
// reports throughput and latency percentiles, plus how the daemon's
// robustness machinery responded (sheds, timeouts, degraded Decisions).
//
// Usage:
//
//	cratload -addr http://127.0.0.1:8177 [-n 64] [-c 8] [-kernels 8]
//	         [-seed 1] [-block 64] [-timeout 30s] [-cancel-frac 0]
//	         [-retries 0] [-verify] [-bench] [-version]
//
// The corpus is fully determined by -seed/-kernels/-block: re-running the
// same invocation against a warm daemon is answered entirely from cache,
// which `make service-smoke` uses to prove restarts re-simulate nothing.
//
// With -bench the result is also printed as a `go test -bench` style line
// (svc-* metrics), so `cratload ... -bench | benchjson` folds service
// performance into the same BENCH_<date>.json as simulator throughput.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"crat/internal/buildinfo"
	"crat/internal/server"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8177", "cratd base URL")
	n := flag.Int("n", 64, "total requests")
	c := flag.Int("c", 8, "closed-loop concurrency")
	kernels := flag.Int("kernels", 8, "distinct generated kernels in the corpus")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	block := flag.Int("block", 64, "thread-block size")
	arch := flag.String("arch", "", "target architecture (empty = daemon default)")
	timeout := flag.Duration("timeout", 30*time.Second, "client-side per-request deadline")
	timeoutMs := flag.Int("timeout-ms", 0, "server-side deadline sent with each request (0 = daemon default)")
	cancelFrac := flag.Float64("cancel-frac", 0, "fraction of requests aborted client-side mid-flight")
	retries := flag.Int("retries", 0, "retry shed (429) requests up to N times, honoring Retry-After")
	verify := flag.Bool("verify", false, "request oracle verification on every compile")
	bench := flag.Bool("bench", false, "also print a go-test-bench style line with svc-* metrics for benchjson")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		buildinfo.Print("cratload")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(os.Stderr, "cratload: %d requests, %d concurrent, %d kernels (seed %d) -> %s\n",
		*n, *c, *kernels, *seed, *addr)
	rep, err := server.RunLoad(ctx, *addr, server.LoadOptions{
		Concurrency: *c,
		Requests:    *n,
		Kernels:     *kernels,
		Seed:        *seed,
		Block:       *block,
		Arch:        *arch,
		Verify:      *verify,
		Timeout:     *timeout,
		TimeoutMs:   *timeoutMs,
		CancelFrac:  *cancelFrac,
		Retries:     *retries,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cratload:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Summary())
	if *bench {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		fmt.Printf("BenchmarkServiceLoad 1 %d ns/op %.2f svc-req/s %.3f svc-p50-ms %.3f svc-p95-ms %.3f svc-p99-ms %d svc-shed %d svc-cache-hits %d svc-degraded\n",
			rep.Elapsed.Nanoseconds(), rep.RPS, ms(rep.P50), ms(rep.P95), ms(rep.P99),
			rep.Shed, rep.Cached, rep.Degraded)
	}
	if rep.Failed > 0 || rep.OK == 0 {
		os.Exit(1)
	}
}
