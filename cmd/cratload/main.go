// Command cratload is the closed-loop load generator for cratd and the
// cratgw gateway: it drives POST /v1/compile with a deterministic corpus
// of generated kernels and reports throughput and latency percentiles,
// plus how the service's robustness machinery responded (sheds,
// timeouts, degraded Decisions, and — against a gateway — retries,
// failovers, and hedges scraped from /statsz).
//
// Usage:
//
//	cratload -addr http://127.0.0.1:8177 [-n 64] [-c 8] [-kernels 8]
//	         [-seed 1] [-block 64] [-timeout 30s] [-cancel-frac 0]
//	         [-retries 0] [-verify] [-decisions-out FILE] [-bench] [-version]
//
// Multi-replica mode spawns and supervises its own fleet — N cratd
// replicas plus a cratgw fronting them — and aims the load at the
// gateway:
//
//	cratload -replicas 3 -cratd-bin ./cratd -cratgw-bin ./cratgw
//	         -fleet-dir /tmp/fleet [-chaos] [-chaos-delay 500ms]
//	         [-hedge-after 0] ...
//
// With -chaos a random replica is SIGKILLed mid-load and restarted on
// the same address with its (warm) cache journal; the run fails unless
// every request was still answered 200 (the gateway's health ejection,
// circuit breaking, and failover absorbed the crash) and all repeats of
// a corpus entry returned identical Decisions. -decisions-out writes one
// canonical digest line per corpus entry, so a multi-replica chaos run
// can be diffed byte-for-byte against a single-replica baseline.
//
// With -chaos-matrix cratload instead drives the full chaos scenario
// matrix — {sigkill, torn-journal, enospc, fsync-fail, conn-reset,
// latency} x {during-load, during-drain, during-restart} — each cell
// against a fresh 2-replica fleet with deterministic fault-injection
// specs (see internal/faultinject), asserting zero client-visible
// failures and Decision digests byte-identical to a fault-free
// baseline. `make chaos-smoke` is this mode.
//
// The corpus is fully determined by -seed/-kernels/-block: re-running
// the same invocation against a warm daemon is answered entirely from
// cache, which `make service-smoke` uses to prove restarts re-simulate
// nothing; `make shard-smoke` layers the fleet chaos run on top.
//
// With -bench the result is also printed as a `go test -bench` style
// line (svc-* metrics, including svc-hedges/svc-failovers), so
// `cratload ... -bench | benchjson` folds service performance into the
// same BENCH_<date>.json as simulator throughput.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"crat/internal/buildinfo"
	"crat/internal/server"
	"crat/internal/shard"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8177", "cratd or cratgw base URL (ignored with -replicas)")
	n := flag.Int("n", 64, "total requests")
	c := flag.Int("c", 8, "closed-loop concurrency")
	kernels := flag.Int("kernels", 8, "distinct generated kernels in the corpus")
	seed := flag.Int64("seed", 1, "corpus generation seed (also seeds the chaos victim choice)")
	block := flag.Int("block", 64, "thread-block size")
	arch := flag.String("arch", "", "target architecture (empty = daemon default)")
	timeout := flag.Duration("timeout", 30*time.Second, "client-side per-request deadline")
	timeoutMs := flag.Int("timeout-ms", 0, "server-side deadline sent with each request (0 = daemon default)")
	cancelFrac := flag.Float64("cancel-frac", 0, "fraction of requests aborted client-side mid-flight")
	retries := flag.Int("retries", 0, "retry shed (429) requests up to N times, honoring Retry-After")
	verify := flag.Bool("verify", false, "request oracle verification on every compile")
	decisionsOut := flag.String("decisions-out", "", "write one canonical Decision digest line per corpus entry to this file")
	bench := flag.Bool("bench", false, "also print a go-test-bench style line with svc-* metrics for benchjson")
	version := flag.Bool("version", false, "print build information and exit")

	// Fleet mode.
	replicas := flag.Int("replicas", 0, "spawn a fleet: N cratd replicas behind a cratgw, and load the gateway")
	cratdBin := flag.String("cratd-bin", "cratd", "cratd binary for -replicas mode")
	cratgwBin := flag.String("cratgw-bin", "cratgw", "cratgw binary for -replicas mode")
	fleetDir := flag.String("fleet-dir", "", "fleet working dir (caches, logs, addr files); required with -replicas")
	hedgeAfter := flag.Duration("hedge-after", 0, "gateway tail-latency hedge delay in -replicas mode (0 = off)")
	chaos := flag.Bool("chaos", false, "SIGKILL a random replica mid-load and restart it (requires -replicas >= 2)")
	chaosDelay := flag.Duration("chaos-delay", 500*time.Millisecond, "how far into the load the chaos kill strikes")
	chaosMatrix := flag.Bool("chaos-matrix", false, "run the full fault x phase chaos matrix against fresh fleets (uses -cratd-bin/-cratgw-bin/-fleet-dir/-n/-c/-kernels/-seed) and exit")
	flag.Parse()

	if *version {
		buildinfo.Print("cratload")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *chaosMatrix {
		if *fleetDir == "" {
			fmt.Fprintln(os.Stderr, "cratload: -chaos-matrix requires -fleet-dir")
			os.Exit(1)
		}
		err := shard.RunChaosMatrix(ctx, shard.ChaosMatrixConfig{
			Dir:         *fleetDir,
			CratdBin:    *cratdBin,
			GatewayBin:  *cratgwBin,
			Requests:    *n,
			Concurrency: *c,
			Kernels:     *kernels,
			Seed:        *seed,
			Log:         os.Stderr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cratload:", err)
			os.Exit(1)
		}
		fmt.Println("chaos-matrix: all cells passed")
		return
	}

	target := *addr
	var fleet *shard.Fleet
	if *replicas > 0 {
		if *fleetDir == "" {
			fmt.Fprintln(os.Stderr, "cratload: -replicas requires -fleet-dir")
			os.Exit(1)
		}
		if *chaos && *replicas < 2 {
			fmt.Fprintln(os.Stderr, "cratload: -chaos needs -replicas >= 2 (a 1-replica fleet has nowhere to fail over)")
			os.Exit(1)
		}
		var err error
		fleet, err = shard.StartFleet(shard.FleetConfig{
			Dir:        *fleetDir,
			CratdBin:   *cratdBin,
			GatewayBin: *cratgwBin,
			Replicas:   *replicas,
			Verify:     *verify,
			HedgeAfter: *hedgeAfter,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cratload: starting fleet:", err)
			os.Exit(1)
		}
		defer func() {
			if err := fleet.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "cratload: fleet stop:", err)
				os.Exit(1)
			}
		}()
		target = fleet.GatewayURL()
		fmt.Fprintf(os.Stderr, "cratload: fleet of %d replicas up behind %s\n", *replicas, target)
	}

	chaosDone := make(chan string, 1)
	if *chaos && fleet != nil {
		go func() {
			rng := rand.New(rand.NewSource(*seed))
			victim := rng.Intn(fleet.NumReplicas())
			time.Sleep(*chaosDelay)
			if err := fleet.KillReplica(victim); err != nil {
				chaosDone <- fmt.Sprintf("kill replica %d: %v", victim, err)
				return
			}
			fmt.Fprintf(os.Stderr, "cratload: CHAOS: SIGKILLed replica %d (%s) mid-load\n",
				victim, fleet.ReplicaURL(victim))
			time.Sleep(500 * time.Millisecond)
			if err := fleet.RestartReplica(victim); err != nil {
				chaosDone <- fmt.Sprintf("restart replica %d: %v", victim, err)
				return
			}
			fmt.Fprintf(os.Stderr, "cratload: CHAOS: restarted replica %d on its original address\n", victim)
			chaosDone <- ""
		}()
	} else {
		chaosDone <- ""
	}

	fmt.Fprintf(os.Stderr, "cratload: %d requests, %d concurrent, %d kernels (seed %d) -> %s\n",
		*n, *c, *kernels, *seed, target)
	rep, err := server.RunLoad(ctx, target, server.LoadOptions{
		Concurrency:      *c,
		Requests:         *n,
		Kernels:          *kernels,
		Seed:             *seed,
		Block:            *block,
		Arch:             *arch,
		Verify:           *verify,
		Timeout:          *timeout,
		TimeoutMs:        *timeoutMs,
		CancelFrac:       *cancelFrac,
		Retries:          *retries,
		CaptureDecisions: *decisionsOut != "" || *replicas > 0,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cratload:", err)
		os.Exit(1)
	}
	if chaosErr := <-chaosDone; chaosErr != "" {
		fmt.Fprintln(os.Stderr, "cratload: chaos:", chaosErr)
		os.Exit(1)
	}
	fmt.Print(rep.Summary())

	gw := scrapeGatewayStats(target)
	if gw != nil {
		fmt.Printf("gateway: retries %d  failovers %d  hedges %d (won %d)  breaker-opens %d  ejections %d\n",
			gw["retries"], gw["failovers"], gw["hedges"], gw["hedge_wins"],
			gw["breaker_opens"], gw["ejections"])
	}
	if *decisionsOut != "" {
		if err := os.WriteFile(*decisionsOut, []byte(strings.Join(rep.Decisions, "\n")+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cratload: writing -decisions-out:", err)
			os.Exit(1)
		}
	}
	if *bench {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		var hedges, failovers int64
		if gw != nil {
			hedges, failovers = gw["hedges"], gw["failovers"]
		}
		fmt.Printf("BenchmarkServiceLoad 1 %d ns/op %.2f svc-req/s %.3f svc-p50-ms %.3f svc-p95-ms %.3f svc-p99-ms %d svc-shed %d svc-cache-hits %d svc-degraded %d svc-hedges %d svc-failovers\n",
			rep.Elapsed.Nanoseconds(), rep.RPS, ms(rep.P50), ms(rep.P95), ms(rep.P99),
			rep.Shed, rep.Cached, rep.Degraded, hedges, failovers)
	}

	switch {
	case rep.Inconsistent > 0:
		fmt.Fprintf(os.Stderr, "cratload: FAIL: %d corpus entries returned inconsistent Decisions\n", rep.Inconsistent)
		os.Exit(1)
	case *replicas > 0 && rep.OK+rep.Canceled < rep.Requests:
		// The fleet acceptance bar: every non-canceled request must have
		// been answered 200 despite any chaos — failover is the product.
		fmt.Fprintf(os.Stderr, "cratload: FAIL: %d of %d requests were client-visible failures\n",
			rep.Requests-rep.OK-rep.Canceled, rep.Requests)
		os.Exit(1)
	case *replicas == 0 && (rep.Failed > 0 || rep.OK == 0):
		os.Exit(1)
	}
}

// scrapeGatewayStats fetches target/statsz and returns the gateway's
// fleet counters, or nil when the target is a plain cratd (no
// "failovers" field) or unreachable.
func scrapeGatewayStats(target string) map[string]int64 {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(target + "/statsz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil
	}
	if _, isGateway := raw["failovers"]; !isGateway {
		return nil
	}
	out := map[string]int64{}
	for _, k := range []string{"retries", "failovers", "hedges", "hedge_wins", "breaker_opens", "ejections", "no_replica", "requests", "completed"} {
		var v int64
		if m, ok := raw[k]; ok {
			json.Unmarshal(m, &v)
		}
		out[k] = v
	}
	return out
}
