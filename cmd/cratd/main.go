// Command cratd is the CRAT compilation-as-a-service daemon: a
// long-running HTTP server that accepts PTX from many concurrent clients,
// runs coordinated register allocation + TLP selection, and returns the
// optimized module plus its Decision.
//
// Usage:
//
//	cratd [-addr 127.0.0.1:8177] [-cache DIR] [-queue N] [-workers N]
//	      [-deadline 30s] [-max-deadline 2m] [-drain 15s] [-drain-grace 0]
//	      [-verify] [-backends a,b] [-fault SPEC] [-addr-file PATH] [-version]
//
// Endpoints:
//
//	POST /v1/compile  PTX + config → optimized kernel + Decision JSON
//	GET  /healthz     liveness (always 200 while the process runs)
//	GET  /readyz      admission state (503 while draining)
//	GET  /statsz      counters: sheds, cache tiers, computes, panics, ...
//
// Robustness behavior — bounded admission queue with 429 load shedding,
// per-request deadlines, content-addressed caching with a crash-safe
// persistent tier, per-request oracle degradation, panic isolation, and
// graceful drain on SIGTERM/SIGINT — is documented in DESIGN.md §13.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crat/internal/backend"
	"crat/internal/buildinfo"
	"crat/internal/faultinject"
	"crat/internal/pool"
	"crat/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8177", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr :0)")
	cacheDir := flag.String("cache", "", "persistent result-cache directory (crash-safe journal; restarts serve it warm)")
	queue := flag.Int("queue", 0, "admission queue capacity; beyond it requests are shed with 429 (0 = 4x workers)")
	workers := flag.Int("workers", pool.DefaultWorkers(), "max concurrent compilations")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline when the request sets none")
	maxDeadline := flag.Duration("max-deadline", 2*time.Minute, "upper bound on any request's deadline")
	drain := flag.Duration("drain", 15*time.Second, "graceful-drain budget on SIGTERM before giving up on in-flight requests")
	drainGrace := flag.Duration("drain-grace", 0, "hold the listener open (readyz already 503) for this long at drain start, so a gateway health check observes not-ready before connections are refused")
	verify := flag.Bool("verify", true, "run the differential oracle on every compile by default (requests may override)")
	backends := flag.String("backends", "", "comma-separated default optimization backends for requests that name none (registered: "+strings.Join(backend.Names(), ",")+"); empty = CRAT")
	fault := flag.String("fault", "", "deterministic fault-injection spec for the cache filesystem, e.g. 'fsync-fail:nth=5;enospc:after=6,count=3' (chaos testing; see internal/faultinject)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		buildinfo.Print("cratd")
		return
	}

	logger := log.New(os.Stderr, "cratd: ", log.LstdFlags|log.Lmsgprefix)
	var faultFS faultinject.FS
	if *fault != "" {
		sc, err := faultinject.Parse(*fault)
		if err != nil {
			logger.Fatalf("-fault: %v", err)
		}
		faultFS = faultinject.NewFS(faultinject.OS(), sc)
		logger.Printf("fault injection armed: %s", sc)
	}
	srv, err := server.New(server.Config{
		Workers:         *workers,
		QueueCapacity:   *queue,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		CacheDir:        *cacheDir,
		VerifyDefault:   *verify,
		DefaultBackends: splitBackends(*backends),
		DrainGrace:      *drainGrace,
		FS:              faultFS,
		Log:             logger,
	})
	if err != nil {
		logger.Fatalf("startup: %v", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	bound := l.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			logger.Fatalf("writing -addr-file: %v", err)
		}
	}
	fmt.Printf("cratd: listening on http://%s (%s)\n", bound, buildinfo.String())
	logger.Printf("listening on %s", bound)

	// SIGTERM/SIGINT → graceful drain: stop admitting, finish in-flight
	// work within the drain budget, flush the journal, exit 0.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case sig := <-sigs:
		logger.Printf("received %v: draining (budget %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("drain incomplete: %v", err)
			os.Exit(1)
		}
		logger.Printf("drained cleanly; journal flushed")
	case err := <-serveErr:
		if err != nil {
			logger.Fatalf("serve: %v", err)
		}
	}
}

// splitBackends parses the comma-separated -backends value, dropping
// empty elements so "a,,b" and trailing commas are forgiven.
func splitBackends(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}
