// Command calibrate prints per-application analysis and mode comparisons;
// it is the development tool used to tune the workload parameter sheets
// against the paper's published per-app behaviour.
//
// Usage:
//
//	calibrate [-apps BLK,CFD] [-modes] [-arch fermi|kepler]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"crat/internal/buildinfo"
	"crat/internal/core"
	"crat/internal/gpusim"
	"crat/internal/workloads"
)

func main() {
	appsFlag := flag.String("apps", "", "comma-separated abbreviations (default: all sensitive)")
	modes := flag.Bool("modes", false, "also simulate the four §7.2 modes")
	archFlag := flag.String("arch", "fermi", "fermi or kepler")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		buildinfo.Print("calibrate")
		return
	}

	arch := gpusim.FermiConfig()
	if *archFlag == "kepler" {
		arch = gpusim.KeplerConfig()
	}

	var profiles []workloads.Profile
	if *appsFlag == "" {
		profiles = workloads.Sensitive()
	} else {
		for _, a := range strings.Split(*appsFlag, ",") {
			p, ok := workloads.ByAbbr(strings.TrimSpace(a))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown app %q\n", a)
				os.Exit(1)
			}
			profiles = append(profiles, p)
		}
	}

	costs, err := gpusim.MeasureCosts(arch)
	check(err)
	fmt.Printf("costs: local=%.1f shared=%.1f\n", costs.Local, costs.Shared)

	for _, p := range profiles {
		start := time.Now()
		app := p.App()
		a, err := core.Analyze(app, arch)
		check(err)
		opt, runs, err := core.ProfileOptTLP(app, arch, a)
		check(err)
		a.OptTLP = opt
		stairs := a.Staircase(arch)
		var tlps []int
		for t := range stairs {
			tlps = append(tlps, t)
		}
		sort.Ints(tlps)
		var sb strings.Builder
		for _, t := range tlps {
			fmt.Fprintf(&sb, " %d:%d", t, stairs[t])
		}
		fmt.Printf("%-5s maxreg=%-3d floor=%-3d def=%-3d maxTLP=%d optTLP=%d stairs={%s }\n",
			p.Abbr, a.MaxReg, a.FeasibleMinReg, a.DefaultReg, a.MaxTLP, a.OptTLP, sb.String())
		for i, st := range runs {
			fmt.Printf("        tlp=%d cycles=%-9d ipc=%.2f l1=%.3f congest=%-8d local=%d\n",
				i+1, st.Cycles, st.IPC(), st.L1HitRate(), st.StallCongestion, st.LocalOps())
		}

		if *modes {
			d, err := core.Optimize(app, core.Options{Arch: arch, OptTLP: opt, SpillShared: true, Costs: costs})
			check(err)
			for _, c := range d.Candidates {
				fmt.Printf("        cand reg=%-3d tlp=%d locals=%d shm=%d others=%d tpsc=%.2f\n",
					c.Reg, c.TLP, c.Overhead.Locals(), c.Overhead.Shareds(), c.Overhead.AddrInsts, c.TPSC)
			}
			fmt.Printf("        chosen: reg=%d tlp=%d\n", d.Chosen.Reg, d.Chosen.TLP)
			var base int64
			for _, m := range []core.Mode{core.ModeMaxTLP, core.ModeOptTLP, core.ModeCRATLocal, core.ModeCRAT} {
				st, dd, err := core.RunMode(app, m, core.Options{Arch: arch, OptTLP: opt, Costs: costs})
				check(err)
				if m == core.ModeOptTLP {
					base = st.Cycles
				}
				speed := 0.0
				if base > 0 {
					speed = float64(base) / float64(st.Cycles)
				}
				fmt.Printf("        %-10s reg=%-3d tlp=%d cycles=%-9d vsOpt=%.3f l1=%.3f local=%d\n",
					m, dd.Chosen.Reg, dd.Chosen.TLP, st.Cycles, speed, st.L1HitRate(), st.LocalOps())
			}
		}
		fmt.Printf("        (%.1fs)\n", time.Since(start).Seconds())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
