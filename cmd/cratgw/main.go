// Command cratgw is the sharded routing gateway for a fleet of cratd
// replicas: it consistent-hashes each compile's content-addressed
// request key onto a stable replica (keeping that replica's cache tiers
// hot), actively health-checks the fleet (/readyz probes eject draining
// or dead replicas and re-admit recovered ones), circuit-breaks crashing
// replicas, retries with exponential backoff + jitter honoring
// Retry-After, fails over to the next ring replica on connection errors
// and 5xx, and can hedge tail latency with a second attempt to the
// failover replica (safe: compiles are deterministic and
// content-addressed, so both replicas answer byte-identically).
//
// Usage:
//
//	cratgw -replicas http://h1:8177,http://h2:8177,http://h3:8177
//	       [-addr 127.0.0.1:8178] [-addr-file PATH]
//	       [-probe-period 250ms] [-probe-timeout 1s]
//	       [-unhealthy-after 2] [-healthy-after 2]
//	       [-breaker-failures 3] [-breaker-cooldown 2s]
//	       [-retries 2] [-hedge-after 0] [-drain 15s] [-fault SPEC] [-version]
//
// Endpoints:
//
//	POST /v1/compile  routed to the owning replica, retried/failed over/hedged
//	GET  /healthz     gateway liveness
//	GET  /readyz      503 while draining or with zero healthy replicas
//	GET  /statsz      per-replica state + opens/ejections/retries/hedges/failovers
//
// See DESIGN.md §15 for the ring construction, breaker state machine,
// and the retry/hedge decision table.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"crat/internal/buildinfo"
	"crat/internal/faultinject"
	"crat/internal/retry"
	"crat/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8178", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	replicas := flag.String("replicas", "", "comma-separated cratd base URLs (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default)")
	probePeriod := flag.Duration("probe-period", 250*time.Millisecond, "health-probe interval per replica")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "health-probe timeout")
	unhealthyAfter := flag.Int("unhealthy-after", 2, "consecutive probe failures that eject a replica from the ring")
	healthyAfter := flag.Int("healthy-after", 2, "consecutive probe successes that re-admit a replica")
	breakerFailures := flag.Int("breaker-failures", 3, "consecutive request failures that open a replica's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before a half-open probe")
	retries := flag.Int("retries", 2, "retries per request beyond the first attempt (failover/backoff budget)")
	hedgeAfter := flag.Duration("hedge-after", 0, "tail-latency hedge: issue a second attempt to the failover replica after this delay (0 = off; derive from the fleet's p99)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-drain budget on SIGTERM")
	fault := flag.String("fault", "", "deterministic fault-injection spec for replica-bound requests, e.g. 'conn-reset:nth=20,count=3;latency:every=6,delay=200ms' (chaos testing; see internal/faultinject)")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *version {
		buildinfo.Print("cratgw")
		return
	}

	logger := log.New(os.Stderr, "cratgw: ", log.LstdFlags|log.Lmsgprefix)
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		logger.Fatal("at least one -replicas URL is required")
	}
	var transport http.RoundTripper
	if *fault != "" {
		sc, err := faultinject.Parse(*fault)
		if err != nil {
			logger.Fatalf("-fault: %v", err)
		}
		transport = faultinject.NewTransport(nil, sc)
		logger.Printf("fault injection armed: %s", sc)
	}

	gw, err := shard.NewGateway(shard.GatewayConfig{
		Replicas: urls,
		Vnodes:   *vnodes,
		Health: shard.HealthConfig{
			Period:         *probePeriod,
			Timeout:        *probeTimeout,
			UnhealthyAfter: *unhealthyAfter,
			HealthyAfter:   *healthyAfter,
		},
		Breaker: shard.BreakerConfig{
			Failures: *breakerFailures,
			Cooldown: *breakerCooldown,
		},
		Retry:      retry.Policy{MaxAttempts: *retries + 1},
		HedgeAfter: *hedgeAfter,
		Transport:  transport,
		Log:        logger,
	})
	if err != nil {
		logger.Fatalf("startup: %v", err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	bound := l.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			logger.Fatalf("writing -addr-file: %v", err)
		}
	}
	fmt.Printf("cratgw: listening on http://%s, fronting %d replicas (%s)\n",
		bound, len(urls), buildinfo.String())
	logger.Printf("listening on %s, replicas: %s", bound, strings.Join(urls, " "))

	gw.Start()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)

	serveErr := make(chan error, 1)
	go func() { serveErr <- gw.Serve(l) }()

	select {
	case sig := <-sigs:
		logger.Printf("received %v: draining (budget %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := gw.Shutdown(ctx); err != nil {
			logger.Printf("drain incomplete: %v", err)
			os.Exit(1)
		}
		logger.Printf("drained cleanly")
	case err := <-serveErr:
		if err != nil {
			logger.Fatalf("serve: %v", err)
		}
	}
}
